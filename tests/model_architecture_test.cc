// Architecture-specific behavioural tests: each model's *defining*
// property from the paper's Table II, verified directly.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/models/baselines.h"
#include "src/models/dcrnn.h"
#include "src/models/traffic_model.h"
#include "src/util/check.h"

namespace trafficbench {
namespace {

const data::TrafficDataset& ArchDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "ARCH";
    profile.num_nodes = 10;
    profile.num_days = 4;
    profile.seed = 900;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

models::ModelContext Context(uint64_t seed = 5) {
  return models::MakeModelContext(ArchDataset(), seed);
}

// ---- Shared behaviours ---------------------------------------------------------

TEST(ArchCommon, SameSeedSameParameters) {
  for (const std::string& name : models::PaperModelNames()) {
    auto a = models::CreateModel(name, Context(42));
    auto b = models::CreateModel(name, Context(42));
    auto pa = a->NamedParameters();
    auto pb = b->NamedParameters();
    ASSERT_EQ(pa.size(), pb.size()) << name;
    for (size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i].second.ToVector(), pb[i].second.ToVector())
          << name << " / " << pa[i].first;
    }
  }
}

TEST(ArchCommon, DifferentSeedsDifferentParameters) {
  for (const std::string& name : models::PaperModelNames()) {
    auto a = models::CreateModel(name, Context(1));
    auto b = models::CreateModel(name, Context(2));
    bool any_diff = false;
    auto pa = a->Parameters();
    auto pb = b->Parameters();
    for (size_t i = 0; i < pa.size() && !any_diff; ++i) {
      any_diff = pa[i].ToVector() != pb[i].ToVector();
    }
    EXPECT_TRUE(any_diff) << name;
  }
}

TEST(ArchCommon, EvalForwardIsDeterministic) {
  data::Batch batch = ArchDataset().MakeBatch({3, 9});
  for (const std::string& name : models::PaperModelNames()) {
    auto model = models::CreateModel(name, Context());
    model->SetTraining(false);
    NoGradGuard no_grad;
    Tensor y1 = model->Forward(batch.x, Tensor());
    Tensor y2 = model->Forward(batch.x, Tensor());
    EXPECT_EQ(y1.ToVector(), y2.ToVector()) << name;
  }
}

TEST(ArchCommon, BatchSizeInvariance) {
  // Predicting a sample alone or within a batch must agree (no cross-batch
  // leakage through normalization or attention).
  data::Batch single = ArchDataset().MakeBatch({17});
  data::Batch batched = ArchDataset().MakeBatch({17, 44, 90});
  for (const std::string& name : models::PaperModelNames()) {
    auto model = models::CreateModel(name, Context());
    model->SetTraining(false);
    NoGradGuard no_grad;
    Tensor alone = model->Forward(single.x, Tensor());
    Tensor together = model->Forward(batched.x, Tensor());
    const int64_t n = ArchDataset().num_nodes();
    for (int64_t t = 0; t < 12; ++t) {
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_NEAR(alone.At({0, t, i}), together.At({0, t, i}), 1e-4)
            << name << " leaks across the batch axis";
      }
    }
  }
}

// ---- STGCN: many-to-one -----------------------------------------------------------

TEST(ArchStgcn, TrainingOutputCarriesTeacherFiller) {
  auto model = models::CreateModel("STGCN", Context());
  model->SetTraining(true);
  data::Batch batch = ArchDataset().MakeBatch({0, 1});
  Tensor teacher = eval::NormalizeTargets(batch.y, ArchDataset().scaler());
  Tensor out = model->Forward(batch.x, teacher);
  // Horizon steps 1..11 must be exactly the (detached) teacher values.
  for (int64_t t = 1; t < 12; ++t) {
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_FLOAT_EQ(out.At({0, t, i}), teacher.At({0, t, i}));
    }
  }
  // Step 0 is a real prediction, not the teacher.
  bool differs = false;
  for (int64_t i = 0; i < 10 && !differs; ++i) {
    differs = std::fabs(out.At({0, 0, i}) - teacher.At({0, 0, i})) > 1e-6;
  }
  EXPECT_TRUE(differs);
}

TEST(ArchStgcn, EvalRolloutDiffersFromTeacherFilled) {
  auto model = models::CreateModel("STGCN", Context());
  data::Batch batch = ArchDataset().MakeBatch({5});
  model->SetTraining(false);
  NoGradGuard no_grad;
  Tensor rollout = model->Forward(batch.x, Tensor());
  EXPECT_EQ(rollout.shape(), Shape({1, 12, 10}));
  // Rollout steps vary across the horizon (it is not a constant repeat).
  bool varies = false;
  for (int64_t t = 1; t < 12 && !varies; ++t) {
    varies = std::fabs(rollout.At({0, t, 0}) - rollout.At({0, 0, 0})) > 1e-6;
  }
  EXPECT_TRUE(varies);
}

// ---- DCRNN: diffusion + teacher forcing ----------------------------------------------

TEST(ArchDcrnn, DiffusionSupportsAreStochastic) {
  std::vector<Tensor> supports =
      models::DiffusionSupports(Context().adjacency, 2);
  ASSERT_EQ(supports.size(), 4u);  // fwd, bwd at powers 1 and 2
  for (const Tensor& p : supports) {
    const int64_t n = p.dim(0);
    for (int64_t i = 0; i < n; ++i) {
      float row = 0;
      for (int64_t j = 0; j < n; ++j) row += p.At({i, j});
      ASSERT_NEAR(row, 1.0f, 1e-4);
    }
  }
}

TEST(ArchDcrnn, TeacherForcingChangesTrainingOutput) {
  auto model = models::CreateModel("DCRNN", Context());
  data::Batch batch = ArchDataset().MakeBatch({2});
  Tensor teacher = eval::NormalizeTargets(batch.y, ArchDataset().scaler());
  model->SetTraining(true);
  Tensor with_teacher = model->Forward(batch.x, teacher);
  model->SetTraining(false);
  NoGradGuard no_grad;
  Tensor autoregressive = model->Forward(batch.x, Tensor());
  // First decoded step sees identical inputs either way...
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_NEAR(with_teacher.At({0, 0, i}), autoregressive.At({0, 0, i}),
                1e-5);
  }
  // ...but later steps diverge because decoding paths differ.
  double diff = 0;
  for (int64_t i = 0; i < 10; ++i) {
    diff += std::fabs(with_teacher.At({0, 11, i}) -
                      autoregressive.At({0, 11, i}));
  }
  EXPECT_GT(diff, 1e-6);
}

// ---- Graph-WaveNet: adaptive adjacency --------------------------------------------------

TEST(ArchGraphWaveNet, AdaptiveEmbeddingsReceiveGradients) {
  auto model = models::CreateModel("Graph-WaveNet", Context());
  model->SetTraining(true);
  data::Batch batch = ArchDataset().MakeBatch({0, 1});
  Tensor teacher = eval::NormalizeTargets(batch.y, ArchDataset().scaler());
  Tensor pred = model->Forward(batch.x, teacher);
  eval::MaskedMaeLoss(ArchDataset().scaler().Denormalize(pred), batch.y)
      .Backward();
  bool e1_has_grad = false;
  for (const auto& [name, p] : model->NamedParameters()) {
    if (name == "e1") {
      for (float g : p.grad()) e1_has_grad = e1_has_grad || g != 0.0f;
    }
  }
  EXPECT_TRUE(e1_has_grad)
      << "adaptive adjacency must be learned end to end";
}

// ---- GMAN / attention models: time features matter ----------------------------------------

TEST(ArchGman, TimeOfDayFeatureChangesPrediction) {
  auto model = models::CreateModel("GMAN", Context());
  model->SetTraining(false);
  NoGradGuard no_grad;
  data::Batch batch = ArchDataset().MakeBatch({10});
  Tensor base = model->Forward(batch.x, Tensor());
  // Shift every time-of-day input by 6 hours.
  std::vector<float> shifted = batch.x.ToVector();
  for (size_t i = 1; i < shifted.size(); i += 2) {
    shifted[i] = std::fmod(shifted[i] + 0.25f, 1.0f);
  }
  Tensor moved = model->Forward(
      Tensor::FromVector(batch.x.shape(), std::move(shifted)), Tensor());
  double diff = 0;
  for (int64_t i = 0; i < base.numel(); ++i) {
    diff += std::fabs(base.data()[i] - moved.data()[i]);
  }
  EXPECT_GT(diff / base.numel(), 1e-4)
      << "GMAN's temporal embedding must react to the clock";
}

// ---- Baselines: exact semantics --------------------------------------------------------------

TEST(ArchBaselines, LastValueRepeatsFinalObservation) {
  models::LastValue model{Context()};
  data::Batch batch = ArchDataset().MakeBatch({7, 20});
  Tensor y = model.Forward(batch.x, Tensor());
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t i = 0; i < 10; ++i) {
      const float last = batch.x.At({b, 11, i, 0});
      for (int64_t t = 0; t < 12; ++t) {
        ASSERT_FLOAT_EQ(y.At({b, t, i}), last);
      }
    }
  }
}

TEST(ArchBaselines, HistoricalAverageUsesClock) {
  models::HistoricalAverage model{Context()};
  model.Fit(ArchDataset());
  data::Batch morning = ArchDataset().MakeBatch({60});   // early-day window
  data::Batch evening = ArchDataset().MakeBatch({200});  // later window
  Tensor m = model.Forward(morning.x, Tensor());
  Tensor e = model.Forward(evening.x, Tensor());
  double diff = 0;
  for (int64_t i = 0; i < m.numel(); ++i) {
    diff += std::fabs(m.data()[i] - e.data()[i]);
  }
  EXPECT_GT(diff, 1e-3) << "HA must vary with time of day";
}

TEST(ArchBaselines, HistoricalAverageIsHorizonFlat) {
  // HA error should barely grow with the horizon — the property that makes
  // it competitive at 60 minutes (Sec. VI).
  models::HistoricalAverage model{Context()};
  model.Fit(ArchDataset());
  const data::DatasetSplits splits = ArchDataset().Splits();
  eval::HorizonReport report = eval::EvaluateModel(
      &model, ArchDataset(), splits.test_begin,
      std::min(splits.test_begin + 100, splits.test_end));
  EXPECT_LT(report.horizon60.mae, report.horizon15.mae * 1.3);
}

// ---- ST-MetaNet: meta weights are node-specific -----------------------------------------------

TEST(ArchStMetaNet, PermutingNodesChangesPerNodePredictions) {
  // Because weights are generated per node from static meta-knowledge,
  // feeding node i's history into node j's slot must not produce node i's
  // prediction — unlike a node-symmetric model.
  auto model = models::CreateModel("ST-MetaNet", Context());
  model->SetTraining(false);
  NoGradGuard no_grad;
  data::Batch batch = ArchDataset().MakeBatch({15});
  Tensor base = model->Forward(batch.x, Tensor());
  // Swap node 0 and node 1 histories.
  std::vector<float> swapped = batch.x.ToVector();
  const int64_t n = 10;
  for (int64_t t = 0; t < 12; ++t) {
    for (int64_t c = 0; c < 2; ++c) {
      std::swap(swapped[(t * n + 0) * 2 + c], swapped[(t * n + 1) * 2 + c]);
    }
  }
  Tensor out = model->Forward(
      Tensor::FromVector(batch.x.shape(), std::move(swapped)), Tensor());
  // Node 0's new prediction differs from node 1's old one: the weights
  // stayed with the node, not with the series.
  double diff = 0;
  for (int64_t t = 0; t < 12; ++t) {
    diff += std::fabs(out.At({0, t, 0}) - base.At({0, t, 1}));
  }
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace trafficbench
