// Tests for dataset CSV import/export: round trips, error reporting,
// and loading a full dataset from files.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/data/io.h"
#include "src/graph/road_network.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

data::TrafficDataset MakeDataset() {
  data::DatasetProfile profile;
  profile.num_nodes = 9;
  profile.num_days = 4;
  profile.seed = 77;
  return data::TrafficDataset::FromProfile(profile);
}

TEST(DataIo, NetworkRoundTrip) {
  data::TrafficDataset dataset = MakeDataset();
  const std::string path = TempPath("tb_net_roundtrip.csv");
  TB_CHECK_OK(data::WriteNetworkCsv(dataset.network(), path));
  Result<graph::RoadNetwork> loaded = data::ReadNetworkCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const graph::RoadNetwork& network = loaded.value();
  EXPECT_EQ(network.num_nodes(), dataset.network().num_nodes());
  EXPECT_EQ(network.segments().size(), dataset.network().segments().size());
  // Adjacency derived from the reloaded network is identical.
  EXPECT_EQ(network.GaussianAdjacency().ToVector(),
            dataset.network().GaussianAdjacency().ToVector());
  std::filesystem::remove(path);
}

TEST(DataIo, SeriesRoundTrip) {
  data::TrafficDataset dataset = MakeDataset();
  const std::string path = TempPath("tb_series_roundtrip.csv");
  TB_CHECK_OK(data::WriteSeriesCsv(dataset.series(), path));
  Result<data::TrafficSeries> loaded =
      data::ReadSeriesCsv(path, data::FeatureKind::kSpeed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes, dataset.series().num_nodes);
  EXPECT_EQ(loaded.value().num_steps, dataset.series().num_steps);
  EXPECT_EQ(loaded.value().day_of_week, dataset.series().day_of_week);
  // Values survive the text round trip to float precision.
  for (size_t i = 0; i < loaded.value().values.size(); i += 97) {
    EXPECT_NEAR(loaded.value().values[i], dataset.series().values[i], 1e-3);
  }
  std::filesystem::remove(path);
}

TEST(DataIo, LoadDatasetCsvEndToEnd) {
  data::TrafficDataset dataset = MakeDataset();
  const std::string net = TempPath("tb_full_net.csv");
  const std::string series = TempPath("tb_full_series.csv");
  TB_CHECK_OK(data::WriteNetworkCsv(dataset.network(), net));
  TB_CHECK_OK(data::WriteSeriesCsv(dataset.series(), series));
  Result<data::TrafficDataset> loaded =
      data::LoadDatasetCsv(net, series, data::FeatureKind::kSpeed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_samples(), dataset.num_samples());
  EXPECT_NEAR(loaded.value().scaler().mean(), dataset.scaler().mean(), 1e-2);
  std::filesystem::remove(net);
  std::filesystem::remove(series);
}

TEST(DataIo, MissingFilesReportIoError) {
  EXPECT_EQ(data::ReadNetworkCsv("/no/such/net.csv").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(data::ReadSeriesCsv("/no/such/series.csv",
                                data::FeatureKind::kSpeed)
                .status()
                .code(),
            StatusCode::kIoError);
}

TEST(DataIo, MalformedNetworkRejected) {
  const std::string path = TempPath("tb_bad_net.csv");
  std::ofstream(path) << "# sensors\nid,x,y\n0,0,0\nnot,a,number,row\n";
  Result<graph::RoadNetwork> loaded = data::ReadNetworkCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(DataIo, NonDenseSensorIdsRejected) {
  const std::string path = TempPath("tb_sparse_ids.csv");
  std::ofstream(path) << "# sensors\nid,x,y\n0,0,0\n5,1,1\n"
                      << "# segments\nfrom,to,distance_miles\n";
  Result<graph::RoadNetwork> loaded = data::ReadNetworkCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove(path);
}

TEST(DataIo, SegmentOutOfRangeRejected) {
  const std::string path = TempPath("tb_bad_seg.csv");
  std::ofstream(path) << "# sensors\nid,x,y\n0,0,0\n1,1,0\n"
                      << "# segments\nfrom,to,distance_miles\n0,7,1.0\n";
  EXPECT_FALSE(data::ReadNetworkCsv(path).ok());
  std::filesystem::remove(path);
}

TEST(DataIo, BadSeriesHeaderRejected) {
  const std::string path = TempPath("tb_bad_header.csv");
  std::ofstream(path) << "time,node0\n0,50\n";
  EXPECT_FALSE(
      data::ReadSeriesCsv(path, data::FeatureKind::kSpeed).ok());
  std::filesystem::remove(path);
}

TEST(DataIo, RowArityMismatchRejected) {
  const std::string path = TempPath("tb_bad_arity.csv");
  std::ofstream(path) << "step,time_of_day,day_of_week,node0,node1\n"
                      << "0,0.0,0,50\n";  // one reading missing
  Result<data::TrafficSeries> loaded =
      data::ReadSeriesCsv(path, data::FeatureKind::kSpeed);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2"), std::string::npos)
      << "error should cite the line number";
  std::filesystem::remove(path);
}

TEST(DataIo, NetworkSeriesNodeMismatchRejected) {
  data::TrafficDataset dataset = MakeDataset();
  const std::string net = TempPath("tb_mismatch_net.csv");
  const std::string series = TempPath("tb_mismatch_series.csv");
  TB_CHECK_OK(data::WriteNetworkCsv(dataset.network(), net));
  std::ofstream(series) << "step,time_of_day,day_of_week,node0\n0,0.0,0,50\n";
  Result<data::TrafficDataset> loaded =
      data::LoadDatasetCsv(net, series, data::FeatureKind::kSpeed);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove(net);
  std::filesystem::remove(series);
}

}  // namespace
}  // namespace trafficbench
