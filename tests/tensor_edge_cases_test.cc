// Edge cases of the tensor engine: rank-0 scalars, degenerate slices,
// single-element concats, unusual conv configurations, and error paths.

#include <cmath>

#include <gtest/gtest.h>

#include "src/tensor/tensor.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using internal_check::CheckError;

TEST(ScalarTensors, ArithmeticOnRankZero) {
  Tensor a = Tensor::Scalar(3.0f);
  Tensor b = Tensor::Scalar(4.0f);
  EXPECT_EQ((a * b).rank(), 0);
  EXPECT_FLOAT_EQ((a * b).Item(), 12.0f);
  EXPECT_FLOAT_EQ(a.SumAll().Item(), 3.0f);
  EXPECT_FLOAT_EQ(a.MeanAll().Item(), 3.0f);
}

TEST(ScalarTensors, BroadcastAgainstAnyRank) {
  Tensor s = Tensor::Scalar(2.0f);
  Tensor m = Tensor::Ones(Shape({2, 3, 4}));
  Tensor out = s * m;
  EXPECT_EQ(out.shape(), Shape({2, 3, 4}));
  EXPECT_FLOAT_EQ(out.At({1, 2, 3}), 2.0f);
}

TEST(ScalarTensors, BackwardThroughScalarChain) {
  Tensor x = Tensor::Scalar(2.0f).set_requires_grad(true);
  Tensor y = (x.Exp() + x.Pow(2.0f)).Log();
  y.Backward();
  // d/dx log(e^x + x^2) = (e^x + 2x) / (e^x + x^2); at x=2 both are e^2+4.
  EXPECT_NEAR(x.grad()[0], 1.0, 1e-4);
}

TEST(DegenerateSlices, EmptySliceHasZeroElements) {
  Tensor a = Tensor::Arange(6).Reshape(Shape({2, 3}));
  Tensor empty = a.Slice(1, 2, 2);
  EXPECT_EQ(empty.shape(), Shape({2, 0}));
  EXPECT_EQ(empty.numel(), 0);
}

TEST(DegenerateSlices, FullSliceEqualsInput) {
  Tensor a = Tensor::Arange(6).Reshape(Shape({2, 3}));
  EXPECT_EQ(a.Slice(0, 0, 2).ToVector(), a.ToVector());
}

TEST(DegenerateSlices, OutOfRangeThrows) {
  Tensor a = Tensor::Arange(6).Reshape(Shape({2, 3}));
  EXPECT_THROW(a.Slice(1, 0, 4), CheckError);
  EXPECT_THROW(a.Slice(1, 2, 1), CheckError);
  EXPECT_THROW(a.Slice(5, 0, 1), CheckError);
}

TEST(ConcatEdgeCases, SingleInputIsCopy) {
  Tensor a = Tensor::Arange(4);
  Tensor c = Concat({a}, 0);
  EXPECT_EQ(c.ToVector(), a.ToVector());
}

TEST(ConcatEdgeCases, MismatchedShapesThrow) {
  Tensor a = Tensor::Zeros(Shape({2, 3}));
  Tensor b = Tensor::Zeros(Shape({3, 3}));
  EXPECT_THROW(Concat({a, b}, 1), CheckError);
  EXPECT_NO_THROW(Concat({a, b}, 0));
}

TEST(ConvEdgeCases, KernelLargerThanInputThrows) {
  Tensor x = Tensor::Ones(Shape({1, 1, 1, 3}));
  Tensor w = Tensor::Ones(Shape({1, 1, 1, 5}));
  EXPECT_THROW(Conv2d(x, w, Tensor()), CheckError);
}

TEST(ConvEdgeCases, StridePadDilationCombined) {
  // 1x3 dilated-by-2 kernel, stride 2, pad 2 on a length-7 input.
  Tensor x = Tensor::Arange(7).Reshape(Shape({1, 1, 1, 7}));
  Tensor w = Tensor::Ones(Shape({1, 1, 1, 3}));
  Tensor y = Conv2d(x, w, Tensor(), 1, 2, 0, 2, 1, 2);
  // Effective kernel span = 5; output width = (7 + 4 - 5) / 2 + 1 = 4.
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 4}));
  // First window covers positions -2, 0, 2 -> 0 + 0 + 2.
  EXPECT_FLOAT_EQ(y.At({0, 0, 0, 0}), 2.0f);
  // Second window covers 0, 2, 4.
  EXPECT_FLOAT_EQ(y.At({0, 0, 0, 1}), 6.0f);
}

TEST(ConvEdgeCases, ChannelMismatchThrows) {
  Tensor x = Tensor::Ones(Shape({1, 2, 2, 2}));
  Tensor w = Tensor::Ones(Shape({1, 3, 1, 1}));
  EXPECT_THROW(Conv2d(x, w, Tensor()), CheckError);
}

TEST(MatMulEdgeCases, OneByOneMatrices) {
  Tensor a = Tensor::Full(Shape({1, 1}), 3.0f);
  Tensor b = Tensor::Full(Shape({1, 1}), 5.0f);
  EXPECT_FLOAT_EQ(MatMul(a, b).Item(), 15.0f);
}

TEST(MatMulEdgeCases, Rank1InputsRejected) {
  Tensor v = Tensor::Arange(3);
  Tensor m = Tensor::Zeros(Shape({3, 3}));
  EXPECT_THROW(MatMul(v, m), CheckError);
}

TEST(IndexSelectEdgeCases, InnerAxisAndRepeats) {
  Tensor a = Tensor::Arange(12).Reshape(Shape({2, 3, 2}));
  Tensor g = IndexSelect(a, 1, {2, 2});
  EXPECT_EQ(g.shape(), Shape({2, 2, 2}));
  EXPECT_FLOAT_EQ(g.At({0, 0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(g.At({0, 1, 0}), 4.0f);
  EXPECT_FLOAT_EQ(g.At({1, 0, 1}), 11.0f);
}

TEST(AutogradEdgeCases, BackwardOnLeafRequiresGradFlag) {
  Tensor a = Tensor::Scalar(1.0f);
  Tensor b = a * 2.0f;  // no grad anywhere
  EXPECT_FALSE(b.requires_grad());
  EXPECT_THROW(b.Backward(), CheckError);
}

TEST(AutogradEdgeCases, SetRequiresGradOnNonLeafThrows) {
  Tensor a = Tensor::Scalar(1.0f).set_requires_grad(true);
  Tensor b = a * 2.0f;
  EXPECT_THROW(b.set_requires_grad(true), CheckError);
}

TEST(AutogradEdgeCases, ReusedSubgraphAccumulatesOnce) {
  // y = h + h where h = 2x: dy/dx = 4 exactly (no double-count of h's op).
  Tensor x = Tensor::Scalar(1.0f).set_requires_grad(true);
  Tensor h = x * 2.0f;
  (h + h).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
}

TEST(AutogradEdgeCases, LongChainDoesNotOverflowStack) {
  // 3000 chained ops exercise the iterative (non-recursive) topo sort.
  Tensor x = Tensor::Scalar(1.0f).set_requires_grad(true);
  Tensor y = x;
  for (int i = 0; i < 3000; ++i) y = y + 0.001f;
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
  EXPECT_NEAR(y.Item(), 4.0f, 1e-3);
}

TEST(AutogradEdgeCases, GradTensorUndefinedBeforeBackward) {
  Tensor x = Tensor::Scalar(1.0f).set_requires_grad(true);
  EXPECT_FALSE(x.GradTensor().defined());
  (x * 1.0f).Backward();
  EXPECT_TRUE(x.GradTensor().defined());
}

TEST(UndefinedTensors, AccessorsThrow) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.shape(), CheckError);
  EXPECT_THROW(t.Item(), CheckError);
  EXPECT_THROW(t.ToVector(), CheckError);
}

TEST(NumericalStability, SigmoidSaturatesWithoutNan) {
  Tensor x = Tensor::FromVector(Shape({2}), {-200.0f, 200.0f});
  Tensor y = x.Sigmoid();
  EXPECT_FLOAT_EQ(y.At({0}), 0.0f);
  EXPECT_FLOAT_EQ(y.At({1}), 1.0f);
  EXPECT_FALSE(std::isnan(y.At({0})));
}

TEST(NumericalStability, GradOfSaturatedSigmoidIsZeroNotNan) {
  Tensor x =
      Tensor::FromVector(Shape({2}), {-200.0f, 200.0f}).set_requires_grad(true);
  x.Sigmoid().SumAll().Backward();
  for (float g : x.grad()) {
    EXPECT_FALSE(std::isnan(g));
    EXPECT_NEAR(g, 0.0f, 1e-6);
  }
}

}  // namespace
}  // namespace trafficbench
