// Smoke tests for the tensor engine; the thorough suites live in
// tensor_ops_test.cc and autograd_test.cc.

#include <gtest/gtest.h>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

TEST(TensorSmoke, ZerosAndShape) {
  Tensor t = Tensor::Zeros(Shape({2, 3}));
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_FLOAT_EQ(t.At({1, 2}), 0.0f);
}

TEST(TensorSmoke, AddBackward) {
  Tensor a = Tensor::FromVector(Shape({2}), {1.0f, 2.0f}).set_requires_grad(true);
  Tensor b = Tensor::FromVector(Shape({2}), {3.0f, 4.0f}).set_requires_grad(true);
  Tensor loss = (a * b).SumAll();
  loss.Backward();
  EXPECT_FLOAT_EQ(loss.Item(), 11.0f);
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 2.0f);
}

TEST(TensorSmoke, MatMul) {
  Tensor a = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape({2, 2}), {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At({0, 0}), 19.0f);
  EXPECT_FLOAT_EQ(c.At({1, 1}), 50.0f);
}

}  // namespace
}  // namespace trafficbench
