// Tests for the road-network substrate and its graph operators.

#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/road_network.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using graph::NetworkTopology;
using graph::RoadNetwork;
using graph::RoadSegment;
using graph::Sensor;

RoadNetwork Triangle() {
  // 0 -> 1 -> 2 -> 0, plus 0 -> 2 shortcut.
  return RoadNetwork(
      {{0, 0, 0}, {1, 1, 0}, {2, 0, 1}},
      {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}, {0, 2, 2.0}});
}

TEST(RoadNetworkBasics, DistancesAndNeighbors) {
  RoadNetwork network = Triangle();
  EXPECT_EQ(network.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(network.distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(network.distance(0, 2), 2.0);
  EXPECT_TRUE(std::isinf(network.distance(1, 0)));
  EXPECT_DOUBLE_EQ(network.distance(1, 1), 0.0);
  EXPECT_EQ(network.OutNeighbors(0).size(), 2u);
  EXPECT_EQ(network.InNeighbors(2).size(), 2u);
}

TEST(RoadNetworkBasics, HopDistances) {
  RoadNetwork network = Triangle();
  std::vector<int> hops = network.HopDistances(1, 5);
  EXPECT_EQ(hops[1], 0);
  EXPECT_EQ(hops[2], 1);
  EXPECT_EQ(hops[0], 2);
  // max_hops truncates the frontier.
  std::vector<int> one_hop = network.HopDistances(1, 1);
  EXPECT_EQ(one_hop[0], -1);
}

TEST(GaussianAdjacencyOp, SelfLoopsAndDecay) {
  RoadNetwork network = Triangle();
  Tensor w = network.GaussianAdjacency(0.01);
  EXPECT_EQ(w.shape(), Shape({3, 3}));
  EXPECT_FLOAT_EQ(w.At({0, 0}), 1.0f);  // exp(0)
  EXPECT_GT(w.At({0, 1}), 0.0f);
  // Longer edge -> smaller weight.
  EXPECT_LT(w.At({0, 2}), w.At({0, 1}));
  // No reverse edge 1 -> 0.
  EXPECT_FLOAT_EQ(w.At({1, 0}), 0.0f);
}

TEST(GaussianAdjacencyOp, ThresholdSparsifies) {
  RoadNetwork network = Triangle();
  Tensor dense = network.GaussianAdjacency(0.0);
  Tensor sparse = network.GaussianAdjacency(0.9);
  int64_t dense_nonzero = 0, sparse_nonzero = 0;
  for (float v : dense.ToVector()) dense_nonzero += v > 0;
  for (float v : sparse.ToVector()) sparse_nonzero += v > 0;
  EXPECT_LT(sparse_nonzero, dense_nonzero);
}

TEST(BinaryAdjacencyOp, EdgesAndDiagonal) {
  Tensor b = Triangle().BinaryAdjacency();
  EXPECT_FLOAT_EQ(b.At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(b.At({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(b.At({1, 0}), 0.0f);
}

class TopologyTest : public ::testing::TestWithParam<NetworkTopology> {};

TEST_P(TopologyTest, GeneratedNetworksAreSane) {
  Rng rng(42);
  for (int64_t n : {8, 16, 33}) {
    Rng local = rng.Fork();
    RoadNetwork network = RoadNetwork::Generate(GetParam(), n, &local);
    EXPECT_EQ(network.num_nodes(), n);
    EXPECT_GT(network.segments().size(), 0u);
    // Every node has at least one neighbour in some direction.
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_GT(network.InNeighbors(i).size() + network.OutNeighbors(i).size(),
                0u)
          << "isolated node " << i;
    }
    // Distances are positive and finite on segments.
    for (const RoadSegment& seg : network.segments()) {
      EXPECT_GT(seg.distance_miles, 0.0);
      EXPECT_LT(seg.distance_miles, 10.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyTest,
                         ::testing::Values(NetworkTopology::kCorridor,
                                           NetworkTopology::kGrid,
                                           NetworkTopology::kMultiCorridor),
                         [](const auto& info) {
                           switch (info.param) {
                             case NetworkTopology::kCorridor:
                               return "Corridor";
                             case NetworkTopology::kGrid:
                               return "Grid";
                             default:
                               return "MultiCorridor";
                           }
                         });

TEST(GraphOperators, RandomWalkRowsSumToOne) {
  Rng rng(7);
  RoadNetwork network =
      RoadNetwork::Generate(NetworkTopology::kCorridor, 12, &rng);
  Tensor p = graph::RandomWalkTransition(network.GaussianAdjacency());
  for (int64_t i = 0; i < 12; ++i) {
    float row = 0;
    for (int64_t j = 0; j < 12; ++j) row += p.At({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5);
  }
}

TEST(GraphOperators, ReverseWalkUsesTransposedGraph) {
  RoadNetwork network = Triangle();
  Tensor adjacency = network.GaussianAdjacency(0.0);
  Tensor reverse = graph::ReverseRandomWalkTransition(adjacency);
  // Edge 0->1 exists, so reverse transition row 1 gives mass to 0.
  EXPECT_GT(reverse.At({1, 0}), 0.0f);
}

TEST(GraphOperators, SymmetricNormalizationBounded) {
  Rng rng(8);
  RoadNetwork network =
      RoadNetwork::Generate(NetworkTopology::kGrid, 16, &rng);
  Tensor sym = graph::SymmetricNormalizedAdjacency(network.GaussianAdjacency());
  for (float v : sym.ToVector()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f + 1e-5f);
  }
}

TEST(GraphOperators, ScaledLaplacianSpectrumInRange) {
  Rng rng(9);
  RoadNetwork network =
      RoadNetwork::Generate(NetworkTopology::kCorridor, 10, &rng);
  Tensor lap = graph::ScaledLaplacian(network.GaussianAdjacency());
  // Rough spectral bound: |T~| entries and diagonal in [-1, 1]-ish.
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_LE(std::fabs(lap.At({i, i})), 1.2f);
  }
}

TEST(GraphOperators, ChebyshevRecurrence) {
  RoadNetwork network = Triangle();
  Tensor lap = graph::ScaledLaplacian(network.GaussianAdjacency(0.0));
  std::vector<Tensor> basis = graph::ChebyshevBasis(lap, 3);
  ASSERT_EQ(basis.size(), 3u);
  // T0 = I.
  EXPECT_FLOAT_EQ(basis[0].At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(basis[0].At({0, 1}), 0.0f);
  // T2 = 2 L T1 - T0 verified elementwise.
  Tensor expected = MatMul(lap, basis[1]) * 2.0f - basis[0];
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(basis[2].data()[i], expected.data()[i], 1e-5);
  }
}

TEST(GraphOperators, SpectralEmbeddingOrthogonalish) {
  Rng rng(10);
  RoadNetwork network =
      RoadNetwork::Generate(NetworkTopology::kMultiCorridor, 18, &rng);
  Tensor embedding =
      graph::SpectralNodeEmbedding(network.GaussianAdjacency(), 4);
  EXPECT_EQ(embedding.shape(), Shape({18, 4}));
  // Columns are near-unit-norm eigenvectors.
  for (int64_t d = 0; d < 4; ++d) {
    double norm = 0;
    for (int64_t i = 0; i < 18; ++i) {
      norm += embedding.At({i, d}) * embedding.At({i, d});
    }
    EXPECT_NEAR(norm, 1.0, 0.1) << "component " << d;
  }
  // Deterministic: same inputs give the same embedding.
  Tensor again = graph::SpectralNodeEmbedding(network.GaussianAdjacency(), 4);
  EXPECT_EQ(embedding.ToVector(), again.ToVector());
}

TEST(RoadNetworkValidation, RejectsBadSegments) {
  EXPECT_THROW(RoadNetwork({{0, 0, 0}}, {{0, 5, 1.0}}),
               internal_check::CheckError);
  EXPECT_THROW(RoadNetwork({{0, 0, 0}, {1, 1, 1}}, {{0, 1, -2.0}}),
               internal_check::CheckError);
}

}  // namespace
}  // namespace trafficbench
