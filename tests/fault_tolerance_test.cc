// Fault-tolerance suite: the deterministic fault injector itself, the
// guarded training loop's NaN recovery and divergence budget, TBCKPT2
// checkpoint integrity under torn/bit-rotted writes, kill-and-resume
// bit-identity of a sweep, degraded CSV loads, and sweeps that outlive a
// failing model.

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/data/io.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"
#include "src/nn/serialize.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/fileio.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

/// Installs a fault spec as the process-wide injector for one test scope
/// and restores the disabled injector on exit, so no test leaks faults
/// into its successors.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    Result<FaultInjector> parsed = FaultInjector::Parse(spec);
    TB_CHECK(parsed.ok()) << parsed.status().ToString();
    FaultInjector::SetGlobal(std::move(parsed).value());
  }
  ~ScopedFault() { FaultInjector::SetGlobal(FaultInjector()); }
};

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

const data::TrafficDataset& TinyDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "FAULT";
    profile.num_nodes = 6;
    profile.num_days = 4;
    profile.seed = 910;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

// ---- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, DisabledByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.Should(FaultSite::kTrainLossNan));
  }
}

TEST(FaultInjector, FireAtFiresExactlyOnce) {
  FaultInjector injector =
      FaultInjector::Parse("crash@3").value();
  EXPECT_FALSE(injector.Should(FaultSite::kCrash));
  EXPECT_FALSE(injector.Should(FaultSite::kCrash));
  EXPECT_TRUE(injector.Should(FaultSite::kCrash));
  EXPECT_FALSE(injector.Should(FaultSite::kCrash));
  EXPECT_EQ(injector.calls(FaultSite::kCrash), 4);
  EXPECT_EQ(injector.fired(FaultSite::kCrash), 1);
}

TEST(FaultInjector, ProbabilityStreamIsDeterministic) {
  FaultInjector a = FaultInjector::Parse("train_loss=0.5,seed=42").value();
  FaultInjector b = FaultInjector::Parse("train_loss=0.5,seed=42").value();
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fa = a.Should(FaultSite::kTrainLossNan);
    EXPECT_EQ(fa, b.Should(FaultSite::kTrainLossNan));
    fired += fa ? 1 : 0;
  }
  // At p=0.5 over 200 draws both "never" and "always" would indicate a
  // broken stream.
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
}

TEST(FaultInjector, SitesHaveIndependentStreams) {
  // The decision sequence of one site must not depend on whether another
  // site is being polled in between.
  FaultInjector alone = FaultInjector::Parse("train_loss=0.3,seed=9").value();
  FaultInjector mixed =
      FaultInjector::Parse("train_loss=0.3,eval_pred=0.7,seed=9").value();
  for (int i = 0; i < 100; ++i) {
    mixed.Should(FaultSite::kEvalPredNan);
    EXPECT_EQ(alone.Should(FaultSite::kTrainLossNan),
              mixed.Should(FaultSite::kTrainLossNan));
  }
}

TEST(FaultInjector, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultInjector::Parse("bogus_site=0.5").ok());
  EXPECT_FALSE(FaultInjector::Parse("train_loss=2.0").ok());
  EXPECT_FALSE(FaultInjector::Parse("train_loss=x").ok());
  EXPECT_FALSE(FaultInjector::Parse("crash@0").ok());
  EXPECT_FALSE(FaultInjector::Parse("seed=abc").ok());
  EXPECT_FALSE(FaultInjector::Parse("crash").ok());
  EXPECT_TRUE(FaultInjector::Parse("").ok());
  EXPECT_FALSE(FaultInjector::Parse("").value().enabled());
}

// ---- Guarded training loop --------------------------------------------------

eval::TrainConfig SmallTrainConfig() {
  eval::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 4;
  return config;
}

TEST(GuardedLoop, RecoversFromInjectedLossNan) {
  ScopedFault fault("train_loss@2");
  auto model = models::CreateModel(
      "STG2Seq", models::MakeModelContext(TinyDataset(), 11));
  eval::TrainResult result =
      TrainModel(model.get(), TinyDataset(), SmallTrainConfig());
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.nonfinite_batches, 1);
  EXPECT_EQ(result.rollbacks, 1);
  ASSERT_EQ(result.epoch_losses.size(), 1u);
  EXPECT_TRUE(std::isfinite(result.epoch_losses[0]));
  for (const Tensor& p : model->Parameters()) {
    for (float v : p.ToVector()) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(GuardedLoop, RecoversFromInjectedGradientNan) {
  ScopedFault fault("train_grad@1");
  auto model = models::CreateModel(
      "STG2Seq", models::MakeModelContext(TinyDataset(), 12));
  eval::TrainResult result =
      TrainModel(model.get(), TinyDataset(), SmallTrainConfig());
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.nonfinite_batches, 1);
  EXPECT_EQ(result.rollbacks, 1);
  for (const Tensor& p : model->Parameters()) {
    for (float v : p.ToVector()) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(GuardedLoop, ReportsDivergenceAfterRollbackBudget) {
  ScopedFault fault("train_loss=1.0");  // every batch is poisoned
  auto model = models::CreateModel(
      "STG2Seq", models::MakeModelContext(TinyDataset(), 13));
  eval::TrainConfig config = SmallTrainConfig();
  config.max_rollbacks = 2;
  eval::TrainResult result = TrainModel(model.get(), TinyDataset(), config);
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find("diverged"), std::string::npos);
  EXPECT_EQ(result.rollbacks, 2);
  EXPECT_EQ(result.nonfinite_batches, 3);  // budget + the final straw
  // Even a diverged model keeps finite (last-good) parameters.
  for (const Tensor& p : model->Parameters()) {
    for (float v : p.ToVector()) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(GuardedLoop, RollbackBacksOffLearningRate) {
  // With guard off the same injected fault would poison the parameters;
  // with guard on, an identical unfaulted run and the faulted run agree
  // wherever no batch was skipped. Cheap proxy: the faulted run must not
  // change the loss trajectory's finiteness and must record the backoff.
  ScopedFault fault("train_loss@1");
  auto model = models::CreateModel(
      "STG2Seq", models::MakeModelContext(TinyDataset(), 14));
  eval::TrainConfig config = SmallTrainConfig();
  config.rollback_lr_backoff = 0.25;
  eval::TrainResult result = TrainModel(model.get(), TinyDataset(), config);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.rollbacks, 1);
}

TEST(GuardedLoop, GuardOffPropagatesNothingButStaysOk) {
  // guard=false keeps the pre-guard behaviour: the poisoned batch steps the
  // optimizer with whatever it got. The run still completes with ok status
  // (the guard is opt-out, not a new failure mode).
  ScopedFault fault("train_loss@2");
  auto model = models::CreateModel(
      "STG2Seq", models::MakeModelContext(TinyDataset(), 15));
  eval::TrainConfig config = SmallTrainConfig();
  config.guard = false;
  eval::TrainResult result = TrainModel(model.get(), TinyDataset(), config);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.rollbacks, 0);
}

// ---- TBCKPT2 round trip and corruption --------------------------------------

class StatefulNet : public nn::Module {
 public:
  explicit StatefulNet(Rng* rng) {
    a = RegisterModule("a", std::make_shared<nn::Linear>(3, 4, rng));
    drop = RegisterModule("drop", std::make_shared<nn::Dropout>(0.5f, 77));
    b = RegisterModule("b", std::make_shared<nn::Linear>(4, 2, rng));
  }
  std::shared_ptr<nn::Linear> a, b;
  std::shared_ptr<nn::Dropout> drop;
};

nn::TrainState MakeTrainState(const nn::Module& module) {
  nn::TrainState state;
  state.epoch = 5;
  state.learning_rate = 1.25e-3;
  state.best_epoch = 3;
  state.rollbacks = 2;
  state.nonfinite_batches = 7;
  state.epoch_losses = {4.0, 3.5, 3.2, 3.0, 2.9};
  state.val_losses = {4.1, 3.6, 3.3, 3.4, 3.5};
  state.optimizer.step_count = 123;
  state.optimizer.slots = {{1.0f, 2.0f}, {}, {0.5f}};
  Rng rng(314);
  rng.Normal();  // populate the cached Box–Muller half
  state.shuffle_rng = rng.GetState();
  state.module_states = module.NamedLocalStates();
  state.best_snapshot = {{9.0f, 8.0f, 7.0f}};
  return state;
}

TEST(TrainCheckpoint, RoundTripsEveryField) {
  Rng rng(21);
  StatefulNet source(&rng);
  const nn::TrainState saved = MakeTrainState(source);
  const std::string path = TempPath("tb_ckpt2_roundtrip.bin");
  TB_CHECK_OK(nn::SaveTrainCheckpoint(source, saved, path));

  Rng rng2(99);
  StatefulNet target(&rng2);
  Result<nn::TrainState> loaded = nn::LoadTrainCheckpoint(&target, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const nn::TrainState& state = loaded.value();

  EXPECT_EQ(state.epoch, saved.epoch);
  EXPECT_EQ(state.learning_rate, saved.learning_rate);
  EXPECT_EQ(state.best_epoch, saved.best_epoch);
  EXPECT_EQ(state.rollbacks, saved.rollbacks);
  EXPECT_EQ(state.nonfinite_batches, saved.nonfinite_batches);
  EXPECT_EQ(state.epoch_losses, saved.epoch_losses);
  EXPECT_EQ(state.val_losses, saved.val_losses);
  EXPECT_EQ(state.optimizer.step_count, saved.optimizer.step_count);
  EXPECT_EQ(state.optimizer.slots, saved.optimizer.slots);
  EXPECT_EQ(state.shuffle_rng.s, saved.shuffle_rng.s);
  EXPECT_EQ(state.shuffle_rng.has_cached_normal,
            saved.shuffle_rng.has_cached_normal);
  EXPECT_EQ(state.shuffle_rng.cached_normal, saved.shuffle_rng.cached_normal);
  EXPECT_EQ(state.module_states, saved.module_states);
  EXPECT_EQ(state.best_snapshot, saved.best_snapshot);

  auto src = source.NamedParameters();
  auto dst = target.NamedParameters();
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(src[i].second.ToVector(), dst[i].second.ToVector());
  }

  // The restored RNG continues the exact stream of the saved one.
  Rng original(314);
  original.Normal();
  Rng restored(0);
  restored.SetState(state.shuffle_rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(original.NextUint64(), restored.NextUint64());
    EXPECT_EQ(original.Normal(), restored.Normal());
  }
  std::filesystem::remove(path);
}

TEST(TrainCheckpoint, BitFlipIsRejectedByCrc) {
  Rng rng(22);
  StatefulNet model(&rng);
  const std::string path = TempPath("tb_ckpt2_bitflip.bin");
  {
    ScopedFault fault("ckpt_bit_flip@1");
    TB_CHECK_OK(nn::SaveTrainCheckpoint(model, MakeTrainState(model), path));
  }
  Result<nn::TrainState> loaded = nn::LoadTrainCheckpoint(&model, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("CRC32"), std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(path);
}

TEST(TrainCheckpoint, ShortWriteIsRejected) {
  Rng rng(23);
  StatefulNet model(&rng);
  const std::string path = TempPath("tb_ckpt2_short.bin");
  {
    ScopedFault fault("ckpt_short_write@1");
    TB_CHECK_OK(nn::SaveTrainCheckpoint(model, MakeTrainState(model), path));
  }
  Result<nn::TrainState> loaded = nn::LoadTrainCheckpoint(&model, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::filesystem::remove(path);
}

TEST(TrainCheckpoint, InjectedWriteFailureLeavesNoFile) {
  Rng rng(24);
  StatefulNet model(&rng);
  const std::string path = TempPath("tb_ckpt2_iowrite.bin");
  std::filesystem::remove(path);
  ScopedFault fault("io_write@1");
  Status status = nn::SaveTrainCheckpoint(model, MakeTrainState(model), path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(TrainCheckpoint, TruncationReportsParameterAndOffset) {
  Rng rng(25);
  StatefulNet model(&rng);
  const std::string path = TempPath("tb_ckpt2_trunc.bin");
  TB_CHECK_OK(nn::SaveTrainCheckpoint(model, MakeTrainState(model), path));
  // Slicing the file is caught by the CRC; to reach the structural
  // diagnostics, rebuild a v1 checkpoint and cut into a parameter's data.
  const std::string v1 = TempPath("tb_ckpt1_trunc.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(model, v1));
  std::filesystem::resize_file(v1, std::filesystem::file_size(v1) - 4);
  Status status = nn::LoadCheckpoint(&model, v1);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("at byte"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("b.bias"), std::string::npos)
      << status.ToString();
  std::filesystem::remove(path);
  std::filesystem::remove(v1);
}

// ---- Kill-and-resume bit-identity -------------------------------------------

core::ExperimentConfig SweepConfig() {
  core::ExperimentConfig config;
  config.epochs = 3;
  config.repeats = 2;
  config.batch_size = 8;
  config.max_batches_per_epoch = 3;
  config.eval_cap = 40;
  config.ckpt_every = 1;
  return config;
}

void ExpectIdenticalReports(const eval::HorizonReport& a,
                            const eval::HorizonReport& b) {
  const auto expect_same = [](const eval::MetricValues& x,
                              const eval::MetricValues& y) {
    EXPECT_EQ(x.mae, y.mae);
    EXPECT_EQ(x.rmse, y.rmse);
    EXPECT_EQ(x.mape, y.mape);
    EXPECT_EQ(x.count, y.count);
  };
  expect_same(a.horizon15, b.horizon15);
  expect_same(a.horizon30, b.horizon30);
  expect_same(a.horizon60, b.horizon60);
  expect_same(a.average, b.average);
}

TEST(KillAndResume, ResumedSweepIsBitIdentical) {
  const core::ExperimentConfig config = SweepConfig();
  core::SweepOptions plain;
  plain.model_names = {"STG2Seq"};
  const std::vector<core::RunResult> baseline =
      core::RunExperiment(TinyDataset(), "FAULT", config, plain);
  ASSERT_EQ(baseline.size(), 1u);
  ASSERT_TRUE(baseline[0].status.ok()) << baseline[0].status.ToString();
  ASSERT_EQ(baseline[0].trials.size(), 2u);

  const std::string dir = TempPath("tb_resume_sweep");
  std::filesystem::remove_all(dir);
  core::SweepOptions persisted = plain;
  persisted.checkpoint_dir = dir;

  // The crash site is polled once per epoch boundary; with 3 epochs per
  // trial, call 5 lands mid-way through the second trial — after its
  // epoch-2 checkpoint was written, exactly like a SIGKILL between epochs.
  bool crashed = false;
  {
    ScopedFault fault("crash@5");
    try {
      core::RunExperiment(TinyDataset(), "FAULT", config, persisted);
    } catch (const SimulatedCrash& crash) {
      crashed = true;
      EXPECT_NE(crash.where.find("epoch 2"), std::string::npos)
          << crash.where;
    }
  }
  ASSERT_TRUE(crashed);
  // Trial 1 finished (its .done record exists); trial 2 left a checkpoint.
  EXPECT_TRUE(
      std::filesystem::exists(dir + "/STG2Seq_trial0.done"));
  EXPECT_TRUE(
      std::filesystem::exists(dir + "/STG2Seq_trial1.ckpt"));

  persisted.resume = true;
  const std::vector<core::RunResult> resumed =
      core::RunExperiment(TinyDataset(), "FAULT", config, persisted);
  ASSERT_EQ(resumed.size(), 1u);
  ASSERT_TRUE(resumed[0].status.ok()) << resumed[0].status.ToString();
  ASSERT_EQ(resumed[0].trials.size(), 2u);
  EXPECT_EQ(resumed[0].parameter_count, baseline[0].parameter_count);
  for (size_t i = 0; i < 2; ++i) {
    ExpectIdenticalReports(resumed[0].trials[i], baseline[0].trials[i]);
  }
  // Finished trials clean up their checkpoints.
  EXPECT_FALSE(std::filesystem::exists(dir + "/STG2Seq_trial1.ckpt"));
  std::filesystem::remove_all(dir);
}

TEST(KillAndResume, CorruptCheckpointFallsBackToFreshTrial) {
  const core::ExperimentConfig config = [] {
    core::ExperimentConfig c = SweepConfig();
    c.repeats = 1;
    return c;
  }();
  core::SweepOptions plain;
  plain.model_names = {"STG2Seq"};
  const std::vector<core::RunResult> baseline =
      core::RunExperiment(TinyDataset(), "FAULT", config, plain);
  ASSERT_TRUE(baseline[0].status.ok());

  const std::string dir = TempPath("tb_corrupt_resume");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/STG2Seq_trial0.ckpt") << "garbage, not a checkpoint";

  core::SweepOptions resuming = plain;
  resuming.checkpoint_dir = dir;
  resuming.resume = true;
  const std::vector<core::RunResult> resumed =
      core::RunExperiment(TinyDataset(), "FAULT", config, resuming);
  ASSERT_TRUE(resumed[0].status.ok()) << resumed[0].status.ToString();
  ASSERT_EQ(resumed[0].trials.size(), 1u);
  // The fresh rerun reproduces the unpersisted baseline exactly.
  ExpectIdenticalReports(resumed[0].trials[0], baseline[0].trials[0]);
  std::filesystem::remove_all(dir);
}

// ---- Sweep survives failing models ------------------------------------------

TEST(Sweep, ContinuesPastFailedModelAndPrintsFailedRow) {
  core::ExperimentConfig config = SweepConfig();
  config.repeats = 1;
  core::SweepOptions options;
  options.model_names = {"NoSuchModel", "LastValue"};
  const std::vector<core::RunResult> results =
      core::RunExperiment(TinyDataset(), "FAULT", config, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[0].trials.empty());
  EXPECT_TRUE(results[1].status.ok()) << results[1].status.ToString();
  EXPECT_EQ(results[1].trials.size(), 1u);

  const std::string table = core::SummarizeSweep(results).ToString();
  EXPECT_NE(table.find("FAILED("), std::string::npos) << table;
  EXPECT_NE(table.find("LastValue"), std::string::npos) << table;
}

TEST(Sweep, DivergedModelGetsFailedRowOthersFinish) {
  // Poison every training batch: the trainable model exhausts its rollback
  // budget and fails; the non-trainable baseline (which never polls the
  // train_loss site) still completes.
  ScopedFault fault("train_loss=1.0");
  core::ExperimentConfig config = SweepConfig();
  config.repeats = 1;
  core::SweepOptions options;
  options.model_names = {"STG2Seq", "LastValue"};
  const std::vector<core::RunResult> results =
      core::RunExperiment(TinyDataset(), "FAULT", config, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInternal);
  EXPECT_NE(results[0].status.message().find("diverged"), std::string::npos);
  EXPECT_TRUE(results[1].status.ok());
  const std::string table = core::SummarizeSweep(results).ToString();
  EXPECT_NE(table.find("FAILED("), std::string::npos) << table;
}

TEST(Sweep, SurvivesProbabilisticNanInjection) {
  // Acceptance scenario: TB_FAULT-style NaN injection at two fixed batches;
  // the guarded loop absorbs both and the sweep's metrics stay finite.
  ScopedFault fault("train_loss@2,train_grad@5");
  core::ExperimentConfig config = SweepConfig();
  config.repeats = 1;
  core::SweepOptions options;
  options.model_names = {"STG2Seq"};
  const std::vector<core::RunResult> results =
      core::RunExperiment(TinyDataset(), "FAULT", config, options);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(results[0].nonfinite_batches, 2);
  EXPECT_EQ(results[0].rollbacks, 2);
  ASSERT_EQ(results[0].trials.size(), 1u);
  EXPECT_TRUE(std::isfinite(results[0].trials[0].average.mae));
  EXPECT_GT(results[0].trials[0].average.count, 0);
}

// ---- Evaluation under prediction faults -------------------------------------

TEST(Evaluation, SkipsInjectedNonFinitePredictions) {
  auto model = models::CreateModel(
      "LastValue", models::MakeModelContext(TinyDataset(), 5));
  model->Fit(TinyDataset());
  const eval::HorizonReport clean =
      eval::EvaluateModel(model.get(), TinyDataset(), 0, 24);

  ScopedFault fault("eval_pred=1.0");  // poison every evaluation batch
  const eval::HorizonReport faulted =
      eval::EvaluateModel(model.get(), TinyDataset(), 0, 24);
  // The poisoned entries are skipped, not propagated: fewer observations,
  // still-finite metrics.
  EXPECT_LT(faulted.average.count, clean.average.count);
  EXPECT_GT(faulted.average.count, 0);
  EXPECT_TRUE(std::isfinite(faulted.average.mae));
  EXPECT_TRUE(std::isfinite(faulted.average.rmse));
  EXPECT_TRUE(std::isfinite(faulted.average.mape));
}

// ---- Degraded CSV loads -----------------------------------------------------

TEST(CsvRobustness, MasksNanAndMissingReadings) {
  const std::string path = TempPath("tb_fault_series.csv");
  std::ofstream(path)
      << "step,time_of_day,day_of_week,s0,s1\n"
      << "0,0.0,0,nan,55.5\n"
      << "1,0.1,0,,60.0\n"
      << "2,0.2,0,inf,61.0\n"
      << "3,0.3,0,58.0,62.0\n";
  Result<data::TrafficSeries> series =
      data::ReadSeriesCsv(path, data::FeatureKind::kSpeed);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_EQ(series.value().masked_entries, 3);
  EXPECT_EQ(series.value().num_steps, 4);
  EXPECT_EQ(series.value().at(0, 0), 0.0f);  // NaN -> masked
  EXPECT_EQ(series.value().at(1, 0), 0.0f);  // empty -> masked
  EXPECT_EQ(series.value().at(2, 0), 0.0f);  // inf -> masked
  EXPECT_EQ(series.value().at(3, 0), 58.0f);
  EXPECT_EQ(series.value().at(0, 1), 55.5f);
  std::filesystem::remove(path);
}

TEST(CsvRobustness, MalformedReadingIsStillAnError) {
  const std::string path = TempPath("tb_fault_series_bad.csv");
  std::ofstream(path) << "step,time_of_day,day_of_week,s0\n"
                      << "0,0.0,0,not_a_number\n";
  Result<data::TrafficSeries> series =
      data::ReadSeriesCsv(path, data::FeatureKind::kSpeed);
  EXPECT_EQ(series.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(series.status().message().find(":2"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CsvRobustness, InjectedOpenFailureSurfacesAsIoError) {
  const std::string path = TempPath("tb_fault_series_ok.csv");
  std::ofstream(path) << "step,time_of_day,day_of_week,s0\n"
                      << "0,0.0,0,50.0\n";
  ScopedFault fault("io_open@1");
  Result<data::TrafficSeries> series =
      data::ReadSeriesCsv(path, data::FeatureKind::kSpeed);
  EXPECT_EQ(series.status().code(), StatusCode::kIoError);
  // The very next attempt (fault expired) succeeds.
  series = data::ReadSeriesCsv(path, data::FeatureKind::kSpeed);
  EXPECT_TRUE(series.ok()) << series.status().ToString();
  std::filesystem::remove(path);
}

// ---- Atomic file writes -----------------------------------------------------

TEST(AtomicWrite, NeverLeavesPartialFileUnderFinalName) {
  const std::string path = TempPath("tb_atomic.txt");
  TB_CHECK_OK(WriteFileAtomic(path, "first version"));
  {
    ScopedFault fault("io_write@1");
    Status status = WriteFileAtomic(path, "second version");
    EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
  // The failed write left the original intact.
  Result<std::string> contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "first version");
  TB_CHECK_OK(WriteFileAtomic(path, "second version"));
  EXPECT_EQ(ReadFileToString(path).value(), "second version");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace trafficbench
