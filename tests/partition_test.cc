// Partitioned graph execution suite: edge-cut partitioner properties
// (coverage, balance, determinism, halo exactness), bitwise equality of the
// partitioned SpMM against the monolithic kernel (forward and backward, at
// several partition counts and thread counts), GraphSupport's partitioned
// dispatch, the halo_exchange fault site's verify-and-fall-back behaviour,
// ShardGroup semantics, sharded training lockstep, sharded evaluation
// parity, and a lean SYNTH-2K end-to-end train + eval + serve pass.

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/exec/execution_context.h"
#include "src/exec/shard.h"
#include "src/graph/partition.h"
#include "src/graph/road_network.h"
#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/serve/server.h"
#include "src/tensor/partitioned.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using exec::ExecOptions;
using exec::ExecutionContext;
using exec::ShardGroup;
using exec::ShardOptions;
using graph::GraphPartition;
using graph::PartitionCsr;
using sparse::CsrMatrix;
using sparse::CsrPtr;
using sparse::PartitionBlock;
using sparse::PartitionedCsr;
using sparse::PartitionedCsrPtr;

/// Dense [n, n] support with ~`density` of entries nonzero.
Tensor RandomSquareSupport(int64_t n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n * n, 0.0f);
  for (float& x : data) {
    if (rng.Uniform(0.0, 1.0) < density) {
      x = static_cast<float>(rng.Normal());
    }
  }
  return Tensor::FromVector(Shape({n, n}), std::move(data));
}

std::vector<float> AsVector(const Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

/// Installs a fault spec process-wide for one test scope.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    Result<FaultInjector> parsed = FaultInjector::Parse(spec);
    TB_CHECK(parsed.ok()) << parsed.status().ToString();
    FaultInjector::SetGlobal(std::move(parsed).value());
  }
  ~ScopedFault() { FaultInjector::SetGlobal(FaultInjector()); }
};

// ---- Partitioner properties -------------------------------------------------

TEST(Partition, CoversEveryNodeExactlyOnceWithinBalanceBound) {
  for (int parts : {1, 2, 3, 4, 7}) {
    Tensor support = RandomSquareSupport(97, 0.05, 11);
    CsrPtr csr = CsrMatrix::FromDense(support);
    GraphPartition partition = PartitionCsr(*csr, parts);
    ASSERT_EQ(partition.num_nodes, 97);
    ASSERT_EQ(partition.num_parts, parts);
    ASSERT_EQ(static_cast<int64_t>(partition.owner.size()), 97);
    ASSERT_EQ(static_cast<int>(partition.nodes.size()), parts);

    std::vector<int> seen(97, 0);
    for (int p = 0; p < parts; ++p) {
      EXPECT_LE(static_cast<int64_t>(partition.nodes[p].size()),
                partition.BalanceBound())
          << "part " << p << " exceeds the balance bound";
      for (size_t i = 0; i < partition.nodes[p].size(); ++i) {
        const int32_t v = partition.nodes[p][i];
        if (i > 0) EXPECT_LT(partition.nodes[p][i - 1], v);
        EXPECT_EQ(partition.owner[v], p);
        ++seen[v];
      }
    }
    for (int v = 0; v < 97; ++v) {
      EXPECT_EQ(seen[v], 1) << "node " << v;
    }
  }
}

TEST(Partition, DeterministicAcrossRepeatsAndThreadCounts) {
  Tensor support = RandomSquareSupport(64, 0.08, 23);
  CsrPtr csr = CsrMatrix::FromDense(support);
  const GraphPartition baseline = PartitionCsr(*csr, 4);
  for (int threads : {1, 2, 4}) {
    ExecutionContext context(ExecOptions{.threads = threads});
    ExecutionContext::Bind bind(&context);
    const GraphPartition repeat = PartitionCsr(*csr, 4);
    EXPECT_EQ(baseline.owner, repeat.owner) << "threads=" << threads;
    EXPECT_EQ(baseline.nodes, repeat.nodes) << "threads=" << threads;
  }
}

TEST(Partition, SinglePartOwnsEverythingAndHasNoCut) {
  Tensor support = RandomSquareSupport(33, 0.1, 31);
  CsrPtr csr = CsrMatrix::FromDense(support);
  GraphPartition partition = PartitionCsr(*csr, 1);
  EXPECT_EQ(static_cast<int64_t>(partition.nodes[0].size()), 33);
  EXPECT_EQ(graph::EdgeCut(*csr, partition), 0);

  GraphPartition split = PartitionCsr(*csr, 4);
  EXPECT_LE(graph::EdgeCut(*csr, split), csr->nnz());
}

TEST(Partition, HaloColumnsAreExactlyCutCrossingCsrColumns) {
  Tensor support = RandomSquareSupport(60, 0.07, 41);
  CsrPtr csr = CsrMatrix::FromDense(support);
  GraphPartition partition = PartitionCsr(*csr, 3);
  PartitionedCsrPtr partitioned = PartitionedCsr::Build(csr, partition);

  for (int p = 0; p < 3; ++p) {
    // Expected halo: columns referenced by p's rows but owned elsewhere.
    std::set<int32_t> expected;
    for (int32_t row : partition.nodes[p]) {
      for (int64_t k = csr->row_ptr()[row]; k < csr->row_ptr()[row + 1];
           ++k) {
        const int32_t col = csr->col_idx()[k];
        if (partition.owner[col] != p) expected.insert(col);
      }
    }
    const std::vector<int32_t> halo = partitioned->HaloColumns(p);
    EXPECT_EQ(std::vector<int32_t>(expected.begin(), expected.end()), halo)
        << "part " << p;

    // Structure: gather ascending; halo_slots point at exactly the
    // non-owned gather entries; local col_idx ascend within each row.
    const PartitionBlock& block = partitioned->forward_blocks()[p];
    for (size_t g = 1; g < block.gather.size(); ++g) {
      EXPECT_LT(block.gather[g - 1], block.gather[g]);
    }
    std::set<int64_t> halo_slots(block.halo_slots.begin(),
                                 block.halo_slots.end());
    for (int64_t g = 0; g < block.gather_size(); ++g) {
      const bool foreign = partition.owner[block.gather[g]] != p;
      EXPECT_EQ(foreign, halo_slots.count(g) == 1) << "gather slot " << g;
    }
    for (int64_t r = 0; r < block.num_rows(); ++r) {
      for (int64_t k = block.row_ptr[r] + 1; k < block.row_ptr[r + 1]; ++k) {
        EXPECT_LT(block.col_idx[k - 1], block.col_idx[k]);
      }
    }
  }
}

// ---- Partitioned SpMM bit-identity ------------------------------------------

TEST(PartitionedSpmm, BitIdenticalToMonolithicAcrossPartsAndThreads) {
  Tensor support = RandomSquareSupport(53, 0.08, 71);
  CsrPtr csr = CsrMatrix::FromDense(support);
  for (int parts : {1, 2, 4}) {
    PartitionedCsrPtr partitioned =
        PartitionedCsr::Build(csr, PartitionCsr(*csr, parts));
    for (int threads : {1, 2, 4}) {
      ExecutionContext context(ExecOptions{.threads = threads});
      ExecutionContext::Bind bind(&context);
      Rng rng(72);
      Tensor x_mono = Tensor::Rand(Shape({3, 53, 5}), &rng, -1.0f, 1.0f)
                          .set_requires_grad(true);
      Tensor x_part =
          Tensor::FromVector(x_mono.shape(), AsVector(x_mono))
              .set_requires_grad(true);

      Tensor y_mono = SparseMatMul(csr, x_mono);
      Tensor y_part = SparseMatMul(partitioned, x_part);
      EXPECT_EQ(AsVector(y_mono), AsVector(y_part))
          << "forward parts=" << parts << " threads=" << threads;

      y_mono.SumAll().Backward();
      y_part.SumAll().Backward();
      EXPECT_EQ(x_mono.grad(), x_part.grad())
          << "backward parts=" << parts << " threads=" << threads;
    }
  }
}

TEST(PartitionedSpmm, HandlesEmptyRowsAndIsolatedPartitions) {
  // Block-diagonal support: partitions have no halo at all; plus empty rows.
  std::vector<float> data(24 * 24, 0.0f);
  for (int64_t i = 0; i < 24; i += 2) {
    data[i * 24 + (i ^ 1)] = static_cast<float>(i + 1);  // pair edges only
  }
  Tensor support = Tensor::FromVector(Shape({24, 24}), std::move(data));
  CsrPtr csr = CsrMatrix::FromDense(support);
  PartitionedCsrPtr partitioned =
      PartitionedCsr::Build(csr, PartitionCsr(*csr, 4));
  Rng rng(81);
  Tensor x = Tensor::Rand(Shape({2, 24, 3}), &rng, -1.0f, 1.0f);
  NoGradGuard no_grad;
  EXPECT_EQ(AsVector(SparseMatMul(csr, x)),
            AsVector(SparseMatMul(partitioned, x)));
}

// ---- GraphSupport dispatch --------------------------------------------------

TEST(PartitionSupport, GraphSupportPartitionsAboveThreshold) {
  Tensor dense = RandomSquareSupport(48, 0.06, 91);
  models::GraphSupportThresholdGuard force_sparse(1.0);

  models::GraphSupport monolithic(dense);
  ASSERT_TRUE(monolithic.is_sparse());
  EXPECT_FALSE(monolithic.is_partitioned());

  models::GraphPartitionGuard partition_small(16, 3);
  models::GraphSupport partitioned(dense);
  ASSERT_TRUE(partitioned.is_partitioned());
  EXPECT_EQ(partitioned.partitioned()->num_parts(), 3);

  Rng rng(92);
  Tensor x = Tensor::Rand(Shape({2, 48, 4}), &rng, -1.0f, 1.0f);
  NoGradGuard no_grad;
  EXPECT_EQ(AsVector(monolithic.Apply(x)), AsVector(partitioned.Apply(x)));
}

TEST(PartitionSupport, SmallSupportsStayMonolithic) {
  models::GraphSupportThresholdGuard force_sparse(1.0);
  Tensor dense = RandomSquareSupport(32, 0.1, 93);
  // Default threshold is 1024 nodes: a 32-node support never partitions.
  EXPECT_EQ(models::GraphPartitionNodeThreshold(), 1024);
  EXPECT_FALSE(models::GraphSupport(dense).is_partitioned());
  // The N-based parts rule is a pure function of N.
  EXPECT_EQ(models::GraphPartitionParts(2048), 2);
  EXPECT_EQ(models::GraphPartitionParts(4096), 4);
  EXPECT_EQ(models::GraphPartitionParts(100000), 8);
}

// ---- halo_exchange fault site -----------------------------------------------

TEST(HaloFault, VerifierDetectsCorruptionAndFallsBackBitIdentical) {
  Tensor support = RandomSquareSupport(40, 0.1, 101);
  CsrPtr csr = CsrMatrix::FromDense(support);
  PartitionedCsrPtr partitioned =
      PartitionedCsr::Build(csr, PartitionCsr(*csr, 2));
  bool any_halo = false;
  for (const PartitionBlock& block : partitioned->forward_blocks()) {
    any_halo = any_halo || !block.halo_slots.empty();
  }
  ASSERT_TRUE(any_halo) << "test support must actually have a halo";

  Rng rng(102);
  Tensor x = Tensor::Rand(Shape({2, 40, 4}), &rng, -1.0f, 1.0f);
  NoGradGuard no_grad;
  const std::vector<float> reference = AsVector(SparseMatMul(csr, x));

  {
    ScopedFault fault("halo_exchange@1");
    Tensor y = SparseMatMul(partitioned, x);
    EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kHaloExchange), 1);
    // The corrupted halo was detected and the op fell back to the
    // monolithic kernel: the result is still bitwise correct.
    EXPECT_EQ(reference, AsVector(y));
  }
  EXPECT_TRUE(partitioned->degraded());
  EXPECT_FALSE(partitioned->degrade_reason().empty());

  // A degraded matrix goes straight to the monolithic path: re-arming the
  // fault can no longer fire it (the halo exchange never runs again).
  {
    ScopedFault fault("halo_exchange@1");
    Tensor y = SparseMatMul(partitioned, x);
    EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kHaloExchange), 0);
    EXPECT_EQ(reference, AsVector(y));
  }
}

TEST(HaloFault, BackwardCorruptionAlsoFallsBackBitIdentical) {
  Tensor support = RandomSquareSupport(40, 0.1, 111);
  CsrPtr csr = CsrMatrix::FromDense(support);
  PartitionedCsrPtr partitioned =
      PartitionedCsr::Build(csr, PartitionCsr(*csr, 2));

  Rng rng(112);
  Tensor x_mono = Tensor::Rand(Shape({2, 40, 4}), &rng, -1.0f, 1.0f)
                      .set_requires_grad(true);
  Tensor x_part = Tensor::FromVector(x_mono.shape(), AsVector(x_mono))
                      .set_requires_grad(true);
  SparseMatMul(csr, x_mono).SumAll().Backward();

  // Run the forward clean, then arm the fault so the first halo-exchange
  // task of the BACKWARD dispatch corrupts its gather buffer.
  Tensor y = SparseMatMul(partitioned, x_part);
  ASSERT_FALSE(partitioned->degraded());
  {
    ScopedFault fault("halo_exchange@1");
    y.SumAll().Backward();
    EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kHaloExchange), 1);
  }
  EXPECT_TRUE(partitioned->degraded());
  EXPECT_EQ(x_mono.grad(), x_part.grad());
}

// ---- ShardGroup -------------------------------------------------------------

TEST(Shard, RangeIsContiguousBalancedAndAligned) {
  ShardGroup group(ShardOptions{.shards = 4, .parallel = false});
  for (int64_t total : {0, 1, 7, 16, 33}) {
    int64_t covered = 0;
    int64_t prev_end = 0;
    for (int s = 0; s < 4; ++s) {
      const auto [begin, end] = group.Range(s, total);
      EXPECT_EQ(begin, prev_end);
      EXPECT_LE(end - begin, (total + 3) / 4);
      prev_end = end;
      covered += end - begin;
    }
    EXPECT_EQ(covered, total);
    EXPECT_EQ(prev_end, total);
  }
  // Batch-aligned ranges start on batch boundaries.
  for (int s = 0; s < 4; ++s) {
    const auto [begin, end] = group.Range(s, 50, 8);
    EXPECT_EQ(begin % 8, 0);
    EXPECT_LE(end, 50);
  }
}

TEST(Shard, RunBindsEachShardToItsOwnContext) {
  ShardGroup group(ShardOptions{.shards = 3, .parallel = true});
  std::vector<ExecutionContext*> bound(3, nullptr);
  group.Run([&](int s) { bound[s] = &ExecutionContext::Current(); });
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(bound[s], &group.context(s)) << "shard " << s;
  }
  // Distinct shards, distinct buffer pools.
  EXPECT_NE(group.context(0).buffer_pool(), group.context(1).buffer_pool());
}

TEST(Shard, RunRethrowsLowestFailingShard) {
  for (bool parallel : {false, true}) {
    ShardGroup group(ShardOptions{.shards = 4, .parallel = parallel});
    try {
      group.Run([&](int s) {
        if (s == 1 || s == 3) {
          throw std::runtime_error("shard " + std::to_string(s));
        }
      });
      FAIL() << "expected the shard error to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard 1") << "parallel=" << parallel;
    }
  }
}

TEST(Shard, ReduceIsFixedOrderAndSkipsNullBuffers) {
  const std::vector<float> a = {1.0f, 2.0f};
  const std::vector<float> b = {10.0f, 20.0f};
  std::vector<float> out(2);
  exec::ReduceShardBuffers({a.data(), b.data()}, 2, 0.5f, out.data());
  EXPECT_EQ(out, (std::vector<float>{5.5f, 11.0f}));

  exec::ReduceShardBuffers({a.data(), nullptr, b.data()},
                           {0.25f, 0.25f, 0.5f}, 2, out.data());
  EXPECT_EQ(out, (std::vector<float>{5.25f, 10.5f}));
}

// ---- Sharded training / evaluation ------------------------------------------

const data::TrafficDataset& ShardDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "SHARD";
    profile.num_nodes = 10;
    profile.num_days = 4;
    profile.seed = 920;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

std::vector<std::unique_ptr<models::TrafficModel>> MakeReplicas(
    const data::TrafficDataset& dataset, int count) {
  const models::ModelContext context = models::MakeModelContext(dataset, 5);
  std::vector<std::unique_ptr<models::TrafficModel>> replicas;
  for (int i = 0; i < count; ++i) {
    // Same context, same seed: identical initial parameter bits.
    replicas.push_back(models::CreateModel("AB-spatial-none", context));
  }
  return replicas;
}

std::vector<models::TrafficModel*> Pointers(
    const std::vector<std::unique_ptr<models::TrafficModel>>& replicas) {
  std::vector<models::TrafficModel*> out;
  for (const auto& r : replicas) out.push_back(r.get());
  return out;
}

TEST(ShardTrain, ReplicasStayLockstepAndParallelMatchesSerialBitwise) {
  const data::TrafficDataset& dataset = ShardDataset();
  eval::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 4;
  config.max_batches_per_epoch = 3;
  config.seed = 17;

  std::vector<std::vector<std::vector<float>>> final_params;  // [mode][param]
  std::vector<std::vector<double>> losses;
  for (bool parallel : {false, true}) {
    auto replicas = MakeReplicas(dataset, 2);
    ShardGroup group(
        ShardOptions{.shards = 2, .threads_per_shard = 1,
                     .parallel = parallel});
    eval::TrainResult result =
        eval::TrainModelSharded(Pointers(replicas), dataset, config, group);
    ASSERT_EQ(result.epoch_losses.size(), 2u);
    EXPECT_EQ(result.batches_per_epoch, 3);
    losses.push_back(result.epoch_losses);

    // Replicas end bitwise identical to each other (lockstep contract).
    std::vector<std::vector<float>> snapshot;
    const auto p0 = replicas[0]->Parameters();
    const auto p1 = replicas[1]->Parameters();
    ASSERT_EQ(p0.size(), p1.size());
    for (size_t i = 0; i < p0.size(); ++i) {
      EXPECT_EQ(AsVector(p0[i]), AsVector(p1[i])) << "parameter " << i;
      snapshot.push_back(AsVector(p0[i]));
    }
    final_params.push_back(std::move(snapshot));
  }
  // Serial and threaded shard execution produce identical bits.
  EXPECT_EQ(losses[0], losses[1]);
  ASSERT_EQ(final_params[0].size(), final_params[1].size());
  for (size_t i = 0; i < final_params[0].size(); ++i) {
    EXPECT_EQ(final_params[0][i], final_params[1][i]) << "parameter " << i;
  }
}

TEST(ShardEval, MatchesUnshardedReport) {
  const data::TrafficDataset& dataset = ShardDataset();
  auto replicas = MakeReplicas(dataset, 2);
  const data::DatasetSplits splits = dataset.Splits();
  const int64_t begin = splits.test_begin;
  const int64_t end = std::min(splits.test_end, begin + 12);

  eval::EvalOptions options;
  options.batch_size = 4;
  const eval::HorizonReport serial =
      eval::EvaluateModel(replicas[0].get(), dataset, begin, end, options);

  ShardGroup group(ShardOptions{.shards = 2, .parallel = true});
  const eval::HorizonReport sharded = eval::EvaluateModelSharded(
      Pointers(replicas), dataset, begin, end, group, options);

  EXPECT_EQ(serial.windows, sharded.windows);
  EXPECT_EQ(serial.average.count, sharded.average.count);
  EXPECT_EQ(serial.horizon15.count, sharded.horizon15.count);
  // Same batches, same per-batch sums; only the double-precision merge
  // order across the shard boundary differs.
  EXPECT_NEAR(serial.average.mae, sharded.average.mae,
              1e-9 * (1.0 + serial.average.mae));
  EXPECT_NEAR(serial.average.rmse, sharded.average.rmse,
              1e-9 * (1.0 + serial.average.rmse));
  EXPECT_NEAR(serial.average.mape, sharded.average.mape,
              1e-9 * (1.0 + serial.average.mape));
  EXPECT_NEAR(serial.horizon60.mae, sharded.horizon60.mae,
              1e-9 * (1.0 + serial.horizon60.mae));
}

// ---- SYNTH-2K end to end ----------------------------------------------------

TEST(PartitionEndToEnd, Synth2kTrainsEvaluatesAndServes) {
  Result<data::DatasetProfile> profile = data::ProfileByName("SYNTH-2K");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile.value().num_nodes, 2048);
  const data::TrafficDataset dataset =
      data::TrafficDataset::FromProfile(profile.value());
  ASSERT_GE(dataset.num_nodes(), graph::kDenseAdjacencyNodeLimit);

  // City scale: the context carries a CSR adjacency, never a dense one.
  const models::ModelContext context =
      models::MakeModelContext(dataset, 2021);
  EXPECT_FALSE(context.adjacency.defined());
  ASSERT_NE(context.adjacency_csr, nullptr);
  EXPECT_EQ(context.adjacency_csr->rows(), 2048);

  // The diffusion backbone builds sparse-native partitioned supports.
  std::vector<std::unique_ptr<models::TrafficModel>> models;
  for (int i = 0; i < 2; ++i) {
    models.push_back(models::CreateModel("AB-spatial-diffusion", context));
  }

  // Lean sharded training pass: one epoch, two tiny global batches.
  eval::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 2;
  config.max_batches_per_epoch = 2;
  config.seed = 3;
  ShardGroup group(ShardOptions{.shards = 2, .parallel = true});
  const eval::TrainResult trained =
      eval::TrainModelSharded(Pointers(models), dataset, config, group);
  ASSERT_TRUE(trained.status.ok()) << trained.status.ToString();
  ASSERT_EQ(trained.epoch_losses.size(), 1u);
  EXPECT_TRUE(std::isfinite(trained.epoch_losses[0]));

  // Sharded eval over a handful of test windows.
  const data::DatasetSplits splits = dataset.Splits();
  eval::EvalOptions eval_options;
  eval_options.batch_size = 1;
  const eval::HorizonReport report = eval::EvaluateModelSharded(
      Pointers(models), dataset, splits.test_begin, splits.test_begin + 2,
      group, eval_options);
  EXPECT_EQ(report.windows, 2);
  EXPECT_GT(report.average.count, 0);
  EXPECT_TRUE(std::isfinite(report.average.mae));

  // Serve a window end-to-end through the registry + server.
  serve::ModelRegistry registry;
  serve::ModelSpec spec;
  spec.model_name = "AB-spatial-diffusion";
  spec.dataset_name = "SYNTH-2K";
  spec.dataset = &dataset;
  spec.warmup = false;
  spec.compile_plans = false;  // keep the 2k-node test lean
  ASSERT_TRUE(registry.Load(spec).ok());

  serve::ServerOptions server_options;
  server_options.workers = 1;
  serve::Server server(&registry, server_options);
  server.Start();
  data::Batch window = dataset.MakeBatch({splits.test_begin});
  serve::PredictRequest request;
  request.model_name = "AB-spatial-diffusion";
  request.dataset_name = "SYNTH-2K";
  request.window = window.x.Squeeze(0);
  serve::PredictResponse response = server.Predict(std::move(request));
  server.Stop();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.prediction.dim(0), dataset.output_len());
  EXPECT_EQ(response.prediction.dim(1), 2048);
}

}  // namespace
}  // namespace trafficbench
