// Tests for the optimizers: SGD, Adam, gradient clipping, LR schedules.

#include <cmath>

#include <gtest/gtest.h>

#include "src/optim/optimizer.h"
#include "src/tensor/tensor.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

Tensor Param(std::vector<float> values) {
  const int64_t size = static_cast<int64_t>(values.size());
  return Tensor::FromVector(Shape({size}), std::move(values))
      .set_requires_grad(true);
}

TEST(Sgd, SingleStepMatchesFormula) {
  Tensor w = Param({1.0f, 2.0f});
  optim::Sgd sgd({w}, 0.1);
  (w * Tensor::FromVector(Shape({2}), {3.0f, -4.0f})).SumAll().Backward();
  sgd.Step();
  EXPECT_NEAR(w.data()[0], 1.0f - 0.1f * 3.0f, 1e-6);
  EXPECT_NEAR(w.data()[1], 2.0f + 0.1f * 4.0f, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  Tensor w = Param({0.0f});
  optim::Sgd sgd({w}, 0.1, /*momentum=*/0.9);
  for (int i = 0; i < 2; ++i) {
    sgd.ZeroGrad();
    (w * 1.0f + 1.0f).SumAll().Backward();  // grad = 1 every step
    sgd.Step();
  }
  // v1 = 1, w -= .1; v2 = .9 + 1 = 1.9, w -= .19 → w = -0.29
  EXPECT_NEAR(w.data()[0], -0.29f, 1e-5);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  Tensor w = Param({5.0f});
  optim::Adam adam({w}, {.learning_rate = 0.01});
  (w * 2.0f).SumAll().Backward();
  adam.Step();
  // With bias correction the first Adam step is ~lr * sign(grad).
  EXPECT_NEAR(w.data()[0], 5.0f - 0.01f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  Tensor w = Param({10.0f, -10.0f});
  optim::Adam adam({w}, {.learning_rate = 0.3});
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    (w * w).SumAll().Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 0.05);
  EXPECT_NEAR(w.data()[1], 0.0f, 0.05);
}

TEST(Adam, WeightDecayShrinksParameters) {
  Tensor w = Param({1.0f});
  optim::Adam adam({w}, {.learning_rate = 0.1, .weight_decay = 0.5});
  adam.ZeroGrad();
  (w * 0.0f).SumAll().Backward();  // zero gradient, pure decay
  adam.Step();
  EXPECT_LT(w.data()[0], 1.0f);
}

TEST(Optimizer, ClipGradNormScalesDown) {
  Tensor w = Param({0.0f, 0.0f});
  optim::Sgd sgd({w}, 1.0);
  (w * Tensor::FromVector(Shape({2}), {3.0f, 4.0f})).SumAll().Backward();
  const double norm = sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(norm, 5.0, 1e-5);
  double clipped = 0;
  for (float g : w.grad()) clipped += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(clipped), 1.0, 1e-4);
}

TEST(Optimizer, ClipGradNormLeavesSmallGradients) {
  Tensor w = Param({0.0f});
  optim::Sgd sgd({w}, 1.0);
  (w * 0.25f).SumAll().Backward();
  sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(w.grad()[0], 0.25f, 1e-6);
}

TEST(Optimizer, ZeroGradClears) {
  Tensor w = Param({1.0f});
  optim::Sgd sgd({w}, 0.1);
  (w * 3.0f).SumAll().Backward();
  sgd.ZeroGrad();
  EXPECT_FLOAT_EQ(w.grad()[0], 0.0f);
}

TEST(Optimizer, RejectsNonGradParameters) {
  Tensor w = Tensor::Zeros(Shape({2}));
  EXPECT_THROW(optim::Sgd({w}, 0.1), internal_check::CheckError);
}

TEST(StepLrScheduleTest, DecaysEveryN) {
  Tensor w = Param({1.0f});
  optim::Sgd sgd({w}, 1.0);
  optim::StepLrSchedule schedule(&sgd, 2, 0.5);
  schedule.EpochEnd();
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 1.0);
  schedule.EpochEnd();
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.5);
  schedule.EpochEnd();
  schedule.EpochEnd();
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.25);
  EXPECT_EQ(schedule.epoch(), 4);
}

TEST(Adam, SkipsParametersWithoutGradients) {
  Tensor used = Param({1.0f});
  Tensor unused = Param({2.0f});
  optim::Adam adam({used, unused}, {.learning_rate = 0.1});
  (used * 1.0f).SumAll().Backward();
  adam.Step();
  EXPECT_NE(used.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(unused.data()[0], 2.0f);
}

}  // namespace
}  // namespace trafficbench
