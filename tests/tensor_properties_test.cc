// Property-style tests of the tensor engine: algebraic identities that
// must hold for arbitrary shapes and values, parameterized over a sweep
// of shapes (TEST_P).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

class ShapeSweep : public ::testing::TestWithParam<Shape> {
 protected:
  Tensor Random(uint64_t seed) {
    Rng rng(seed);
    return Tensor::Rand(GetParam(), &rng, -2.0f, 2.0f);
  }
};

void ExpectAllNear(const Tensor& a, const Tensor& b, float tolerance = 1e-5f) {
  ASSERT_EQ(a.shape(), b.shape());
  const std::vector<float> av = a.ToVector();
  const std::vector<float> bv = b.ToVector();
  for (size_t i = 0; i < av.size(); ++i) {
    ASSERT_NEAR(av[i], bv[i], tolerance) << "at flat index " << i;
  }
}

TEST_P(ShapeSweep, AdditionCommutes) {
  Tensor a = Random(1), b = Random(2);
  ExpectAllNear(a + b, b + a);
}

TEST_P(ShapeSweep, MultiplicationDistributes) {
  Tensor a = Random(3), b = Random(4), c = Random(5);
  ExpectAllNear(a * (b + c), a * b + a * c, 1e-4f);
}

TEST_P(ShapeSweep, NegationIsInvolution) {
  Tensor a = Random(6);
  ExpectAllNear((-(-a)), a);
}

TEST_P(ShapeSweep, ExpLogRoundTrip) {
  Rng rng(7);
  Tensor a = Tensor::Rand(GetParam(), &rng, 0.1f, 3.0f);
  ExpectAllNear(a.Log().Exp(), a, 1e-4f);
}

TEST_P(ShapeSweep, TanhViaSigmoidIdentity) {
  // tanh(x) = 2 sigmoid(2x) - 1
  Tensor a = Random(8);
  ExpectAllNear(a.Tanh(), (a * 2.0f).Sigmoid() * 2.0f - 1.0f, 1e-5f);
}

TEST_P(ShapeSweep, ReluPlusNegReluIsIdentity) {
  Tensor a = Random(9);
  ExpectAllNear(a.Relu() - (-a).Relu(), a);
}

TEST_P(ShapeSweep, ReshapeRoundTripsThroughFlat) {
  Tensor a = Random(10);
  Tensor flat = a.Reshape(Shape({a.numel()}));
  ExpectAllNear(flat.Reshape(GetParam()), a);
}

TEST_P(ShapeSweep, SumAllEqualsSumOfAxes) {
  Tensor a = Random(11);
  if (a.rank() == 0) GTEST_SKIP();
  std::vector<int> axes(a.rank());
  for (int i = 0; i < a.rank(); ++i) axes[i] = i;
  EXPECT_NEAR(a.SumAll().Item(), a.Sum(axes).Item(), 1e-3f);
}

TEST_P(ShapeSweep, MeanIsSumOverCount) {
  Tensor a = Random(12);
  EXPECT_NEAR(a.MeanAll().Item() * static_cast<float>(a.numel()),
              a.SumAll().Item(), 1e-3f);
}

TEST_P(ShapeSweep, MaximumMinimumPartition) {
  Tensor a = Random(13), b = Random(14);
  // max(a,b) + min(a,b) == a + b
  ExpectAllNear(Maximum(a, b) + Minimum(a, b), a + b);
}

TEST_P(ShapeSweep, AbsIsNonNegativeAndEven) {
  Tensor a = Random(15);
  for (float v : a.Abs().ToVector()) EXPECT_GE(v, 0.0f);
  ExpectAllNear(a.Abs(), (-a).Abs());
}

TEST_P(ShapeSweep, BroadcastToSelfIsIdentity) {
  Tensor a = Random(16);
  ExpectAllNear(a.BroadcastTo(GetParam()), a);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(Shape({1}), Shape({7}), Shape({3, 4}), Shape({1, 5}),
                      Shape({2, 3, 4}), Shape({2, 1, 3, 2})),
    [](const ::testing::TestParamInfo<Shape>& info) {
      std::string name = "s";
      for (int64_t d : info.param.dims()) name += "_" + std::to_string(d);
      return name;
    });

TEST(TensorProperty, TransposeIsInvolution) {
  Rng rng(20);
  Tensor a = Tensor::Randn(Shape({3, 5}), &rng);
  Tensor round = a.Transpose(0, 1).Transpose(0, 1);
  EXPECT_EQ(round.ToVector(), a.ToVector());
}

TEST(TensorProperty, PermuteComposesWithInverse) {
  Rng rng(21);
  Tensor a = Tensor::Randn(Shape({2, 3, 4, 5}), &rng);
  Tensor p = a.Permute({3, 1, 0, 2});
  // inverse of {3,1,0,2} is {2,1,3,0}
  Tensor back = p.Permute({2, 1, 3, 0});
  EXPECT_EQ(back.ToVector(), a.ToVector());
}

TEST(TensorProperty, MatMulIdentityIsNoop) {
  Rng rng(22);
  Tensor a = Tensor::Randn(Shape({4, 4}), &rng);
  std::vector<float> eye(16, 0.0f);
  for (int i = 0; i < 4; ++i) eye[i * 4 + i] = 1.0f;
  Tensor identity = Tensor::FromVector(Shape({4, 4}), std::move(eye));
  Tensor left = MatMul(identity, a);
  Tensor right = MatMul(a, identity);
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(left.data()[i], a.data()[i], 1e-5f);
    EXPECT_NEAR(right.data()[i], a.data()[i], 1e-5f);
  }
}

TEST(TensorProperty, MatMulAssociates) {
  Rng rng(23);
  Tensor a = Tensor::Randn(Shape({3, 4}), &rng);
  Tensor b = Tensor::Randn(Shape({4, 5}), &rng);
  Tensor c = Tensor::Randn(Shape({5, 2}), &rng);
  Tensor left = MatMul(MatMul(a, b), c);
  Tensor right = MatMul(a, MatMul(b, c));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-3f);
  }
}

TEST(TensorProperty, MatMulTransposeIdentity) {
  // (A B)^T == B^T A^T
  Rng rng(24);
  Tensor a = Tensor::Randn(Shape({3, 4}), &rng);
  Tensor b = Tensor::Randn(Shape({4, 5}), &rng);
  Tensor lhs = MatMul(a, b).Transpose(0, 1);
  Tensor rhs = MatMul(b.Transpose(0, 1), a.Transpose(0, 1));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-4f);
  }
}

TEST(TensorProperty, SoftmaxInvariantToShift) {
  Rng rng(25);
  Tensor a = Tensor::Randn(Shape({4, 6}), &rng);
  Tensor shifted = a + 100.0f;
  Tensor ya = a.Softmax(-1);
  Tensor yb = shifted.Softmax(-1);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_NEAR(ya.data()[i], yb.data()[i], 1e-5f);
  }
}

TEST(TensorProperty, ConcatThenSliceRecoversParts) {
  Rng rng(26);
  Tensor a = Tensor::Randn(Shape({2, 3}), &rng);
  Tensor b = Tensor::Randn(Shape({2, 5}), &rng);
  Tensor joined = Concat({a, b}, 1);
  EXPECT_EQ(joined.Slice(1, 0, 3).ToVector(), a.ToVector());
  EXPECT_EQ(joined.Slice(1, 3, 8).ToVector(), b.ToVector());
}

TEST(TensorProperty, PadThenSliceIsIdentity) {
  Rng rng(27);
  Tensor a = Tensor::Randn(Shape({3, 4}), &rng);
  Tensor padded = Pad(a, 0, 2, 1);
  EXPECT_EQ(padded.Slice(0, 2, 5).ToVector(), a.ToVector());
}

TEST(TensorProperty, Conv1x1EqualsChannelMatmul) {
  // A 1x1 convolution is exactly a linear map over channels.
  Rng rng(28);
  Tensor x = Tensor::Randn(Shape({2, 3, 4, 5}), &rng);
  Tensor w = Tensor::Randn(Shape({6, 3, 1, 1}), &rng);
  Tensor conv = Conv2d(x, w, Tensor());
  Tensor lin = MatMul(w.Reshape(Shape({6, 3})),
                      x.Reshape(Shape({2, 3, 20})));
  Tensor expected = lin.Reshape(Shape({2, 6, 4, 5}));
  for (int64_t i = 0; i < conv.numel(); ++i) {
    EXPECT_NEAR(conv.data()[i], expected.data()[i], 1e-4f);
  }
}

TEST(TensorProperty, StrideTwoConvMatchesManualSubsampling) {
  Tensor x = Tensor::Arange(8).Reshape(Shape({1, 1, 1, 8}));
  Tensor w = Tensor::Ones(Shape({1, 1, 1, 1}));
  Tensor strided = Conv2d(x, w, Tensor(), 1, 2);
  EXPECT_EQ(strided.ToVector(), (std::vector<float>{0, 2, 4, 6}));
}

TEST(TensorProperty, GradOfSumIsOnes) {
  for (int64_t n : {1, 5, 17}) {
    Tensor a = Tensor::Zeros(Shape({n})).set_requires_grad(true);
    a.SumAll().Backward();
    EXPECT_EQ(a.grad(), std::vector<float>(n, 1.0f));
  }
}

TEST(TensorProperty, LinearityOfGradients) {
  // d/dx (3 f(x)) == 3 d/dx f(x) for f = sigmoid.
  Rng rng(29);
  Tensor x1 = Tensor::Randn(Shape({6}), &rng);
  Tensor x2 = Tensor::FromVector(Shape({6}), x1.ToVector());
  x1.set_requires_grad(true);
  x2.set_requires_grad(true);
  x1.Sigmoid().SumAll().Backward();
  (x2.Sigmoid() * 3.0f).SumAll().Backward();
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(3.0f * x1.grad()[i], x2.grad()[i], 1e-5f);
  }
}

}  // namespace
}  // namespace trafficbench
