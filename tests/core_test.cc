// Tests for the experiment harness: environment config, RunResult
// statistics, and the RunModelOnDataset pipeline (with a cheap baseline).

#include <cstdlib>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/util/check.h"
#include "src/data/dataset.h"
#include "src/models/traffic_model.h"

namespace trafficbench {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(ExperimentConfig, DefaultsWithoutEnv) {
  core::ExperimentConfig config = core::ExperimentConfig::FromEnv();
  EXPECT_DOUBLE_EQ(config.scale, 1.0);
  EXPECT_EQ(config.epochs, 3);
  EXPECT_EQ(config.repeats, 2);
  EXPECT_GT(config.eval_cap, 0);
  EXPECT_FALSE(config.verbose);
}

TEST(ExperimentConfig, EnvOverrides) {
  EnvGuard scale("TB_SCALE", "0.5");
  EnvGuard epochs("TB_EPOCHS", "7");
  EnvGuard repeats("TB_REPEATS", "4");
  EnvGuard batches("TB_BATCHES", "13");
  EnvGuard batch("TB_BATCH", "32");
  EnvGuard eval("TB_EVAL", "99");
  EnvGuard verbose("TB_VERBOSE", "1");
  core::ExperimentConfig config = core::ExperimentConfig::FromEnv();
  EXPECT_DOUBLE_EQ(config.scale, 0.5);
  EXPECT_EQ(config.epochs, 7);
  EXPECT_EQ(config.repeats, 4);
  EXPECT_EQ(config.max_batches_per_epoch, 13);
  EXPECT_EQ(config.batch_size, 32);
  EXPECT_EQ(config.eval_cap, 99);
  EXPECT_TRUE(config.verbose);
}

TEST(RunResultStats, MeanStdAcrossTrials) {
  core::RunResult result;
  eval::HorizonReport a, b;
  a.horizon15.mae = 2.0;
  b.horizon15.mae = 4.0;
  a.average.rmse = 1.0;
  b.average.rmse = 3.0;
  result.trials = {a, b};
  eval::MeanStd mae15 = result.Metric("mae", 15);
  EXPECT_DOUBLE_EQ(mae15.mean, 3.0);
  EXPECT_GT(mae15.stddev, 0.0);
  EXPECT_DOUBLE_EQ(result.Metric("rmse", 0).mean, 2.0);
  EXPECT_THROW(result.Metric("nope", 15), internal_check::CheckError);
}

TEST(RunModelOnDatasetPipeline, BaselineEndToEnd) {
  data::DatasetProfile profile;
  profile.name = "CORE-TEST";
  profile.num_nodes = 8;
  profile.num_days = 4;
  profile.seed = 31;
  data::TrafficDataset dataset = data::TrafficDataset::FromProfile(profile);

  core::ExperimentConfig config;
  config.repeats = 2;
  config.epochs = 1;
  config.eval_cap = 40;
  core::RunResult result = core::RunModelOnDataset(
      "HistoricalAverage", dataset, profile.name, config);
  EXPECT_EQ(result.trials.size(), 2u);
  EXPECT_GT(result.Metric("mae", 0).mean, 0.0);
  // The baseline is deterministic, so trials agree exactly.
  EXPECT_DOUBLE_EQ(result.Metric("mae", 0).stddev, 0.0);
  EXPECT_EQ(result.parameter_count, 0);
}

TEST(RunModelOnDatasetPipeline, DifficultMaskProducesHigherMae) {
  data::DatasetProfile profile;
  profile.name = "CORE-TEST2";
  profile.num_nodes = 8;
  profile.num_days = 4;
  profile.seed = 33;
  profile.incidents_per_day = 6.0;
  data::TrafficDataset dataset = data::TrafficDataset::FromProfile(profile);
  std::vector<uint8_t> mask = eval::DifficultMask(dataset.series(), {});

  core::ExperimentConfig config;
  config.repeats = 1;
  config.epochs = 1;
  config.eval_cap = 60;
  core::RunResult result = core::RunModelOnDataset(
      "LastValue", dataset, profile.name, config, &mask);
  ASSERT_EQ(result.difficult_trials.size(), 1u);
  // Difficult intervals are harder than average for persistence.
  EXPECT_GT(result.Metric("mae", 0, true).mean,
            result.Metric("mae", 0, false).mean);
}

TEST(BuildDatasetHelper, AppliesScale) {
  data::DatasetProfile profile = data::ProfileByName("PEMSD8-F").value();
  core::ExperimentConfig config;
  config.scale = 0.5;
  data::TrafficDataset dataset = core::BuildDataset(profile, config);
  EXPECT_EQ(dataset.num_nodes(), profile.num_nodes / 2);
}

}  // namespace
}  // namespace trafficbench
