// Property tests for the blocked, packed GEMM kernels: the blocked
// GemmAcc*Rows primitives must agree with the retained naive reference
// kernels (GemmRef*Rows) within float-reassociation tolerance across odd and
// tail sizes in every layout, accumulate into (not overwrite) C, and stay
// bit-identical across thread counts through the batched drivers.

#include <cmath>
#include <cstdint>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/execution_context.h"
#include "src/tensor/kernels.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using exec::ExecOptions;
using exec::ExecutionContext;

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

/// Blocked and naive results may differ by reassociation only: the bound
/// scales with the accumulation depth and the magnitude of the reference.
void ExpectClose(const std::vector<float>& got, const std::vector<float>& ref,
                 int64_t depth) {
  ASSERT_EQ(got.size(), ref.size());
  const float tol =
      1e-6f * static_cast<float>(depth + 8);  // ~depth * float eps * margin
  for (size_t i = 0; i < ref.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(ref[i]));
    ASSERT_NEAR(got[i], ref[i], tol * scale)
        << "at flat index " << i << " (depth " << depth << ")";
  }
}

// Edge sizes crossing the micro-tile (4x16) and row-chunk (16) boundaries;
// depths crossing the depth block (256).
const int64_t kEdgeSizes[] = {1, 2, 3, 4, 5, 7, 15, 16, 17, 31, 33};
const int64_t kDepths[] = {1, 3, 16, 31, 255, 256, 257};

TEST(KernelProperty, BlockedNNMatchesNaiveAcrossTailSizes) {
  for (int64_t m : kEdgeSizes) {
    for (int64_t n : kEdgeSizes) {
      for (int64_t k : kDepths) {
        const std::vector<float> a = RandomVec(m * k, 1000 + m * 31 + k);
        const std::vector<float> b = RandomVec(k * n, 2000 + n * 31 + k);
        // Nonzero init: the primitives accumulate into C.
        std::vector<float> c_blocked = RandomVec(m * n, 3000 + m + n);
        std::vector<float> c_ref = c_blocked;
        kernels::GemmAccNNRows(a.data(), b.data(), c_blocked.data(), 0, m, k,
                               n);
        kernels::GemmRefNNRows(a.data(), b.data(), c_ref.data(), 0, m, k, n);
        ExpectClose(c_blocked, c_ref, k);
      }
    }
  }
}

TEST(KernelProperty, BlockedNTMatchesNaiveAcrossTailSizes) {
  // C[M,K] += A[M,N] * B[K,N]^T: the "cols" of the blocked kernel is k and
  // its depth is n, so swap the roles of the size sets accordingly.
  for (int64_t m : kEdgeSizes) {
    for (int64_t k : kEdgeSizes) {
      for (int64_t n : kDepths) {
        const std::vector<float> a = RandomVec(m * n, 4000 + m * 37 + n);
        const std::vector<float> b = RandomVec(k * n, 5000 + k * 37 + n);
        std::vector<float> c_blocked = RandomVec(m * k, 6000 + m + k);
        std::vector<float> c_ref = c_blocked;
        kernels::GemmAccNTRows(a.data(), b.data(), c_blocked.data(), 0, m, n,
                               k);
        kernels::GemmRefNTRows(a.data(), b.data(), c_ref.data(), 0, m, n, k);
        ExpectClose(c_blocked, c_ref, n);
      }
    }
  }
}

TEST(KernelProperty, BlockedTNMatchesNaiveAcrossTailSizes) {
  // C[K,N] += A[M,K]^T * B[M,N]: depth is m.
  for (int64_t k : kEdgeSizes) {
    for (int64_t n : kEdgeSizes) {
      for (int64_t m : kDepths) {
        const std::vector<float> a = RandomVec(m * k, 7000 + k * 41 + m);
        const std::vector<float> b = RandomVec(m * n, 8000 + n * 41 + m);
        std::vector<float> c_blocked = RandomVec(k * n, 9000 + k + n);
        std::vector<float> c_ref = c_blocked;
        kernels::GemmAccTNRows(a.data(), b.data(), c_blocked.data(), 0, k, m,
                               k, n);
        kernels::GemmRefTNRows(a.data(), b.data(), c_ref.data(), 0, k, m, k,
                               n);
        ExpectClose(c_blocked, c_ref, m);
      }
    }
  }
}

TEST(KernelProperty, RowRangeDecompositionMatchesFullRange) {
  // Computing [0, m) in one call equals computing arbitrary row splits:
  // each C row's accumulation chain is independent of the range bounds.
  const int64_t m = 37, k = 129, n = 29;
  const std::vector<float> a = RandomVec(m * k, 11);
  const std::vector<float> b = RandomVec(k * n, 12);
  std::vector<float> c_full(m * n, 0.0f);
  kernels::GemmAccNNRows(a.data(), b.data(), c_full.data(), 0, m, k, n);
  std::vector<float> c_split(m * n, 0.0f);
  const int64_t cuts[] = {0, 5, 16, 17, 33, m};
  for (size_t i = 0; i + 1 < std::size(cuts); ++i) {
    kernels::GemmAccNNRows(a.data(), b.data(), c_split.data(), cuts[i],
                           cuts[i + 1], k, n);
  }
  EXPECT_EQ(c_full, c_split);  // bit-identical, not just close
}

/// Runs the batched NN driver under a context with `threads` workers.
std::vector<float> BatchedNNWithThreads(
    int threads, const std::vector<float>& a, const std::vector<float>& b,
    const std::vector<int64_t>& a_offsets,
    const std::vector<int64_t>& b_offsets, int64_t num_batches, int64_t m,
    int64_t k, int64_t n) {
  ExecutionContext context(ExecOptions{.threads = threads});
  std::vector<float> c(num_batches * m * n, 0.0f);
  kernels::GemmBatchedNN(context, a.data(), b.data(), c.data(),
                         a_offsets.data(), b_offsets.data(), num_batches, m,
                         k, n);
  return c;
}

TEST(KernelProperty, BatchedBroadcastOffsetsBitIdenticalAcrossThreads) {
  // One shared A ([N, N] support, offset 0 for every batch) against
  // per-batch B blocks — the broadcast batched-matmul pattern of the
  // models. Blocked kernels must stay bit-identical across thread counts.
  const int64_t num_batches = 6, m = 37, k = 37, n = 23;
  const std::vector<float> a = RandomVec(m * k, 21);
  const std::vector<float> b = RandomVec(num_batches * k * n, 22);
  const std::vector<int64_t> a_offsets(num_batches, 0);
  std::vector<int64_t> b_offsets(num_batches);
  for (int64_t i = 0; i < num_batches; ++i) b_offsets[i] = i * k * n;

  const std::vector<float> serial = BatchedNNWithThreads(
      1, a, b, a_offsets, b_offsets, num_batches, m, k, n);
  for (int threads : {2, 4}) {
    const std::vector<float> parallel = BatchedNNWithThreads(
        threads, a, b, a_offsets, b_offsets, num_batches, m, k, n);
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }
}

TEST(KernelProperty, BatchedGradRepeatedAccOffsetsBitIdenticalAcrossThreads) {
  // Gradient driver with a broadcast operand: every batch accumulates into
  // the SAME dA block (repeated acc offsets), the case that forces
  // row-range-only chunking. Must be bit-identical across thread counts.
  const int64_t num_batches = 5, m = 33, n = 19, k = 21;
  const std::vector<float> dc = RandomVec(num_batches * m * n, 31);
  const std::vector<float> b = RandomVec(num_batches * k * n, 32);
  const std::vector<int64_t> da_offsets(num_batches, 0);  // broadcast dA
  std::vector<int64_t> b_offsets(num_batches);
  for (int64_t i = 0; i < num_batches; ++i) b_offsets[i] = i * k * n;

  auto run = [&](int threads) {
    ExecutionContext context(ExecOptions{.threads = threads});
    std::vector<float> da(m * k, 0.0f);
    kernels::GemmBatchedNT(context, dc.data(), b.data(), da.data(),
                           da_offsets.data(), b_offsets.data(), num_batches,
                           m, n, k);
    return da;
  };
  const std::vector<float> serial = run(1);
  for (int threads : {2, 4}) {
    EXPECT_EQ(serial, run(threads)) << threads << " threads";
  }
}

TEST(KernelProperty, DispatchReportsConsistentIsaChoice) {
  // The AVX2 pick is one load-time decision; both calls must agree.
  EXPECT_EQ(kernels::GemmUsesAvx2(), kernels::GemmUsesAvx2());
}

}  // namespace
}  // namespace trafficbench
