// Tests for the execution layer: deterministic thread-pool parallelism
// (bit-identical results at any thread count), ParallelFor chunk coverage,
// the op profiler, and serial-vs-parallel training equivalence.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/exec/execution_context.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using exec::ExecOptions;
using exec::ExecutionContext;
using exec::OpKind;
using exec::OpStats;

/// Runs `fn` under a context with the given thread count and returns the
/// raw float buffer it produces.
template <typename Fn>
std::vector<float> RunWithThreads(int threads, Fn fn) {
  ExecutionContext context(ExecOptions{.threads = threads});
  ExecutionContext::Bind bind(&context);
  return fn();
}

TEST(ExecutionContext, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 4}) {
    ExecutionContext context(ExecOptions{.threads = threads});
    std::mutex mu;
    std::multiset<int64_t> seen;
    // 103 indivisible by grain 7 => a ragged trailing chunk.
    context.ParallelFor(103, 7, [&](int64_t begin, int64_t end) {
      EXPECT_LT(begin, end);
      EXPECT_LE(end - begin, 7);
      std::lock_guard<std::mutex> lock(mu);
      for (int64_t i = begin; i < end; ++i) seen.insert(i);
    });
    ASSERT_EQ(seen.size(), 103u) << "threads=" << threads;
    for (int64_t i = 0; i < 103; ++i) {
      EXPECT_EQ(seen.count(i), 1u) << "index " << i;
    }
  }
}

TEST(ExecutionContext, ParallelForPropagatesExceptions) {
  ExecutionContext context(ExecOptions{.threads = 4});
  EXPECT_THROW(
      context.ParallelFor(64, 1,
                          [&](int64_t begin, int64_t) {
                            if (begin == 32) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int64_t> sum{0};
  context.ParallelFor(10, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ExecutionContext, CurrentFallsBackToSerial) {
  ExecutionContext& current = ExecutionContext::Current();
  EXPECT_EQ(current.threads(), 1);
  EXPECT_FALSE(current.profiling_enabled());
}

TEST(ExecutionContext, BindNestsAndNullIsNoop) {
  ExecutionContext outer(ExecOptions{.threads = 2});
  ExecutionContext::Bind bind_outer(&outer);
  EXPECT_EQ(&ExecutionContext::Current(), &outer);
  {
    ExecutionContext::Bind bind_null(nullptr);  // must keep `outer` bound
    EXPECT_EQ(&ExecutionContext::Current(), &outer);
    ExecutionContext inner(ExecOptions{.threads = 4});
    ExecutionContext::Bind bind_inner(&inner);
    EXPECT_EQ(&ExecutionContext::Current(), &inner);
  }
  EXPECT_EQ(&ExecutionContext::Current(), &outer);
}

TEST(Determinism, MatMulBitIdenticalAcrossThreads) {
  // Odd, non-chunk-aligned shapes exercise ragged row chunks.
  Rng rng(11);
  Tensor a = Tensor::Randn(Shape({37, 53}), &rng);
  Tensor b = Tensor::Randn(Shape({53, 29}), &rng);
  NoGradGuard no_grad;
  const std::vector<float> serial = RunWithThreads(
      1, [&] { return MatMul(a, b).ToVector(); });
  for (int threads : {2, 4}) {
    const std::vector<float> parallel = RunWithThreads(
        threads, [&] { return MatMul(a, b).ToVector(); });
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], parallel[i])
          << "threads=" << threads << " element " << i;
    }
  }
}

TEST(Determinism, MatMulBackwardBitIdenticalAcrossThreads) {
  // Broadcast batches make the gradient GEMMs accumulate into shared
  // blocks — exactly the case the row-chunked backward kernels protect.
  auto grads = [&](int threads) {
    return RunWithThreads(threads, [&] {
      Rng rng(12);
      Tensor a = Tensor::Randn(Shape({45, 19}), &rng).set_requires_grad(true);
      Tensor b = Tensor::Randn(Shape({6, 19, 23}), &rng)
                     .set_requires_grad(true);
      Tensor loss = MatMul(a, b).Abs().SumAll();
      loss.Backward();
      std::vector<float> out = a.grad();
      const std::vector<float>& gb = b.grad();
      out.insert(out.end(), gb.begin(), gb.end());
      return out;
    });
  };
  const std::vector<float> serial = grads(1);
  for (int threads : {2, 4}) {
    const std::vector<float> parallel = grads(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], parallel[i])
          << "threads=" << threads << " grad element " << i;
    }
  }
}

TEST(Determinism, SumBitIdenticalAcrossThreads) {
  Rng rng(13);
  Tensor x = Tensor::Randn(Shape({7, 13, 5, 11}), &rng);
  NoGradGuard no_grad;
  auto reduce = [&](int threads) {
    return RunWithThreads(threads, [&] {
      std::vector<float> out = x.Sum({1, 3}, /*keepdim=*/false).ToVector();
      const std::vector<float> all = x.SumAll().ToVector();
      out.insert(out.end(), all.begin(), all.end());
      return out;
    });
  };
  const std::vector<float> serial = reduce(1);
  for (int threads : {2, 4}) {
    const std::vector<float> parallel = reduce(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], parallel[i]) << "threads=" << threads;
    }
  }
}

TEST(Determinism, Conv2dLayerBitIdenticalAcrossThreads) {
  Rng rng(14);
  nn::Conv2dLayer conv(3, 5, 1, 3, &rng, /*stride_h=*/1, /*stride_w=*/1,
                       /*pad_h=*/0, /*pad_w=*/1);
  Tensor x = Tensor::Randn(Shape({4, 3, 9, 12}), &rng);
  NoGradGuard no_grad;
  const std::vector<float> serial = RunWithThreads(
      1, [&] { return conv.Forward(x).ToVector(); });
  for (int threads : {2, 4}) {
    const std::vector<float> parallel = RunWithThreads(
        threads, [&] { return conv.Forward(x).ToVector(); });
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], parallel[i]) << "threads=" << threads;
    }
  }
}

TEST(Determinism, SoftmaxAndElementwiseBitIdenticalAcrossThreads) {
  Rng rng(15);
  Tensor x = Tensor::Randn(Shape({6, 17, 9}), &rng);
  Tensor y = Tensor::Randn(Shape({6, 17, 9}), &rng);
  NoGradGuard no_grad;
  auto chain = [&](int threads) {
    return RunWithThreads(threads, [&] {
      return ((x * y).Sigmoid() + x.Softmax(1)).Tanh().ToVector();
    });
  };
  const std::vector<float> serial = chain(1);
  for (int threads : {2, 4}) {
    const std::vector<float> parallel = chain(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], parallel[i]) << "threads=" << threads;
    }
  }
}

TEST(Determinism, TrainingLossIdenticalSerialVsParallel) {
  data::DatasetProfile profile;
  profile.name = "EXEC";
  profile.num_nodes = 8;
  profile.num_days = 4;
  profile.seed = 910;
  const data::TrafficDataset dataset =
      data::TrafficDataset::FromProfile(profile);

  auto train = [&](exec::ExecutionContext* context) {
    auto model = models::CreateModel(
        "STGCN", models::MakeModelContext(dataset, 77));
    eval::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 8;
    config.max_batches_per_epoch = 3;
    config.seed = 5;
    config.exec = context;
    return eval::TrainModel(model.get(), dataset, config);
  };

  const eval::TrainResult serial = train(nullptr);
  ExecutionContext parallel_context(ExecOptions{.threads = 4});
  const eval::TrainResult parallel = train(&parallel_context);

  ASSERT_EQ(serial.epoch_losses.size(), parallel.epoch_losses.size());
  for (size_t i = 0; i < serial.epoch_losses.size(); ++i) {
    // Bit-identical end-of-epoch loss: same kernels, same chunking, same
    // accumulation order regardless of the thread count.
    EXPECT_EQ(serial.epoch_losses[i], parallel.epoch_losses[i]);
  }
}

TEST(OpProfiler, RecordsCountsAndMonotonicTime) {
  ExecutionContext context(ExecOptions{.threads = 1, .profile = true});
  ExecutionContext::Bind bind(&context);
  Rng rng(16);
  Tensor a = Tensor::Randn(Shape({24, 24}), &rng);
  Tensor b = Tensor::Randn(Shape({24, 24}), &rng);
  NoGradGuard no_grad;
  (void)MatMul(a, b);
  OpStats after_one = context.profiler().stats(OpKind::kMatMul);
  EXPECT_EQ(after_one.calls, 1);
  EXPECT_GE(after_one.seconds, 0.0);
  EXPECT_DOUBLE_EQ(after_one.flops, 2.0 * 24 * 24 * 24);

  (void)MatMul(a, b);
  OpStats after_two = context.profiler().stats(OpKind::kMatMul);
  EXPECT_EQ(after_two.calls, 2);
  EXPECT_GE(after_two.seconds, after_one.seconds);  // time is monotonic
  EXPECT_GT(context.profiler().TotalSeconds(), 0.0);

  const std::string summary = context.profiler().TopKindsSummary(3);
  EXPECT_NE(summary.find("MatMul"), std::string::npos);

  context.profiler().Reset();
  EXPECT_EQ(context.profiler().stats(OpKind::kMatMul).calls, 0);
  EXPECT_DOUBLE_EQ(context.profiler().TotalSeconds(), 0.0);
}

TEST(OpProfiler, DisabledProfilingRecordsNothing) {
  ExecutionContext context(ExecOptions{.threads = 1, .profile = false});
  ExecutionContext::Bind bind(&context);
  Rng rng(17);
  Tensor a = Tensor::Randn(Shape({8, 8}), &rng);
  NoGradGuard no_grad;
  (void)MatMul(a, a);
  EXPECT_EQ(context.profiler().stats(OpKind::kMatMul).calls, 0);
}

}  // namespace
}  // namespace trafficbench
