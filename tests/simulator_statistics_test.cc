// Statistical properties of the traffic simulator that the paper's
// experiments depend on: weekly structure, spatial correlation along the
// graph, noise persistence, and upstream incident propagation.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/traffic_simulator.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using data::FeatureKind;
using data::SimulatorOptions;
using data::TrafficSeries;

double Correlation(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(va * vb + 1e-12);
}

std::vector<double> NodeSeries(const TrafficSeries& series, int64_t node) {
  std::vector<double> out(series.num_steps);
  for (int64_t s = 0; s < series.num_steps; ++s) {
    out[s] = series.at(s, node);
  }
  return out;
}

TEST(SimulatorStats, WeekendsFasterThanWeekdays) {
  Rng rng(50);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, 10, &net_rng);
  SimulatorOptions options;
  options.num_days = 14;  // two full weeks
  Rng sim_rng = rng.Fork();
  TrafficSeries series =
      SimulateTraffic(network, FeatureKind::kSpeed, options, &sim_rng);

  // Compare daytime speeds on weekdays vs weekends.
  double weekday = 0, weekend = 0;
  int64_t wd = 0, we = 0;
  for (int64_t s = 0; s < series.num_steps; ++s) {
    const int64_t step_in_day = s % data::kStepsPerDay;
    if (step_in_day < 84 || step_in_day > 228) continue;  // 07:00-19:00
    for (int64_t node = 0; node < series.num_nodes; ++node) {
      const float v = series.at(s, node);
      if (v == 0.0f) continue;
      if (series.day_of_week[s] < 5) {
        weekday += v;
        ++wd;
      } else {
        weekend += v;
        ++we;
      }
    }
  }
  ASSERT_GT(wd, 0);
  ASSERT_GT(we, 0);
  EXPECT_GT(weekend / we, weekday / wd + 1.0)
      << "weekend daytime traffic should be faster";
}

TEST(SimulatorStats, NeighborsMoreCorrelatedThanDistantNodes) {
  Rng rng(51);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, 16, &net_rng);
  SimulatorOptions options;
  options.num_days = 6;
  options.incidents_per_day = 8.0;
  Rng sim_rng = rng.Fork();
  TrafficSeries series =
      SimulateTraffic(network, FeatureKind::kSpeed, options, &sim_rng);

  // Average correlation of directly-connected pairs vs far pairs (hop > 4).
  double near_sum = 0, far_sum = 0;
  int64_t near_count = 0, far_count = 0;
  for (int64_t i = 0; i < 16; ++i) {
    std::vector<int> hops = network.HopDistances(i, 16);
    std::vector<double> a = NodeSeries(series, i);
    for (int64_t j = i + 1; j < 16; ++j) {
      const double corr = Correlation(a, NodeSeries(series, j));
      if (hops[j] == 1) {
        near_sum += corr;
        ++near_count;
      } else if (hops[j] > 4 || hops[j] < 0) {
        far_sum += corr;
        ++far_count;
      }
    }
  }
  ASSERT_GT(near_count, 0);
  ASSERT_GT(far_count, 0);
  EXPECT_GT(near_sum / near_count, far_sum / far_count + 0.02)
      << "adjacent sensors must co-vary more than distant ones";
}

TEST(SimulatorStats, ShortTermNoiseIsPersistent) {
  // The AR(1) component makes one-step changes positively correlated with
  // the previous level (momentum), unlike white noise.
  Rng rng(52);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, 8, &net_rng);
  SimulatorOptions options;
  options.num_days = 6;
  options.incidents_per_day = 0.0;  // isolate the noise process
  options.rush_severity = 0.0;      // no daily pattern either
  options.missing_rate = 0.0;       // a zero reading is a -60 mph outlier
  Rng sim_rng = rng.Fork();
  TrafficSeries series =
      SimulateTraffic(network, FeatureKind::kSpeed, options, &sim_rng);

  // Lag-1 autocorrelation of the (detrended) series per node.
  double total = 0;
  for (int64_t node = 0; node < 8; ++node) {
    std::vector<double> values = NodeSeries(series, node);
    std::vector<double> now(values.begin(), values.end() - 1);
    std::vector<double> next(values.begin() + 1, values.end());
    total += Correlation(now, next);
  }
  EXPECT_GT(total / 8.0, 0.5) << "AR(1) persistence expected";
}

TEST(SimulatorStats, IncidentsPropagateUpstreamWithDelay) {
  // Build a directed chain 0 -> 1 -> 2 -> 3 -> 4 and inject incidents.
  // Congestion at a node must back up onto its upstream feeders; node 4
  // (most downstream) dips should correlate with *later* dips at node 2.
  std::vector<graph::Sensor> sensors;
  std::vector<graph::RoadSegment> segments;
  for (int64_t i = 0; i < 5; ++i) sensors.push_back({i, double(i), 0.0});
  for (int64_t i = 0; i + 1 < 5; ++i) segments.push_back({i, i + 1, 1.0});
  graph::RoadNetwork chain(sensors, segments);

  SimulatorOptions options;
  options.num_days = 8;
  options.incidents_per_day = 10.0;
  options.rush_severity = 0.0;
  options.noise_level = 0.3;
  Rng sim_rng(53);
  TrafficSeries series =
      SimulateTraffic(chain, FeatureKind::kSpeed, options, &sim_rng);

  // Cross-correlation of downstream node 4 with upstream node 3 at lag 1
  // (upstream reacts one step later) should exceed the reversed lag.
  std::vector<double> down = NodeSeries(series, 4);
  std::vector<double> up = NodeSeries(series, 3);
  std::vector<double> down_now(down.begin(), down.end() - 1);
  std::vector<double> up_next(up.begin() + 1, up.end());
  std::vector<double> up_now(up.begin(), up.end() - 1);
  std::vector<double> down_next(down.begin() + 1, down.end());
  const double forward = Correlation(down_now, up_next);
  const double backward = Correlation(up_now, down_next);
  EXPECT_GT(forward, backward - 0.05)
      << "incident waves should travel upstream (with delay), not downstream";
  EXPECT_GT(forward, 0.3);
}

TEST(SimulatorStats, FlowPeaksAtIntermediateSpeed) {
  // Across (speed, flow) pairs generated from the same latent state, the
  // mean flow in the mid-speed band must exceed both extremes
  // (fundamental-diagram shape).
  Rng rng(54);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, 8, &net_rng);
  SimulatorOptions options;
  options.num_days = 8;
  options.incidents_per_day = 8.0;
  options.rush_severity = 0.7;
  // Same seed twice: identical latent congestion, different observable.
  Rng rng_speed(99), rng_flow(99);
  TrafficSeries speed =
      SimulateTraffic(network, FeatureKind::kSpeed, options, &rng_speed);
  TrafficSeries flow =
      SimulateTraffic(network, FeatureKind::kFlow, options, &rng_flow);

  double low = 0, mid = 0, high = 0;
  int64_t nl = 0, nm = 0, nh = 0;
  for (size_t i = 0; i < speed.values.size(); ++i) {
    const float v = speed.values[i];
    const float q = flow.values[i];
    if (v == 0.0f || q == 0.0f) continue;
    if (v < 30.0f) {
      low += q;
      ++nl;
    } else if (v < 48.0f) {
      mid += q;
      ++nm;
    } else {
      high += q;
      ++nh;
    }
  }
  ASSERT_GT(nl, 50);
  ASSERT_GT(nm, 50);
  ASSERT_GT(nh, 50);
  EXPECT_GT(mid / nm, low / nl);
}

}  // namespace
}  // namespace trafficbench
