// Compiled-inference-plan suite (DESIGN.md §12): the plan-vs-autograd
// bit-identity contract across every paper model, batch bucket and thread
// count; allocation-free steady-state execution out of pre-bound BufferPool
// buffers; fused-epilogue profiler accounting; the plan_compile fault
// site's eager fallback; and the compiler's rejection of host-computed
// (input-independent) outputs.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/exec/execution_context.h"
#include "src/models/traffic_model.h"
#include "src/plan/plan.h"
#include "src/serve/model_registry.h"
#include "src/tensor/tensor.h"
#include "src/tensor/trace.h"
#include "src/util/check.h"
#include "src/util/fault.h"

namespace trafficbench {
namespace {

class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    Result<FaultInjector> parsed = FaultInjector::Parse(spec);
    TB_CHECK(parsed.ok()) << parsed.status().ToString();
    FaultInjector::SetGlobal(std::move(parsed).value());
  }
  ~ScopedFault() { FaultInjector::SetGlobal(FaultInjector()); }
};

const data::TrafficDataset& TinyDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "SERVE";
    profile.num_nodes = 8;
    profile.num_days = 4;
    profile.seed = 414;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

constexpr char kDataset[] = "SERVE";

serve::ModelSpec SpecFor(const std::string& model_name) {
  serve::ModelSpec spec;
  spec.model_name = model_name;
  spec.dataset_name = kDataset;
  spec.dataset = &TinyDataset();
  spec.seed = 2021;
  return spec;
}

/// A [batch, T_in, N, 2] batch of the first `batch` dataset samples.
Tensor Batch(int64_t batch) {
  std::vector<int64_t> samples;
  for (int64_t i = 0; i < batch; ++i) samples.push_back(i);
  return TinyDataset().MakeBatch(samples).x;
}

bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ---- Bit-identity contract --------------------------------------------------

// The headline determinism contract: for every paper model, the compiled
// plan's prediction is bit-identical to the eager autograd forward, for
// every micro-batch bucket the server can form and at every kernel thread
// count (the eager reference itself is thread-invariant by the
// deterministic-chunking contract, so one reference pins all of them).
TEST(PlanBitIdentity, MatchesEagerForAllPaperModelsBucketsAndThreads) {
  serve::ModelRegistry registry;
  for (const std::string& name : models::PaperModelNames()) {
    TB_CHECK_OK(registry.Load(SpecFor(name)));
    serve::LoadedModelPtr entry = registry.Find(name, kDataset);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->plans_active()) << name << ": "
                                       << entry->plan_summary();
    for (const int64_t batch : {int64_t{1}, int64_t{4}, int64_t{8}}) {
      const Tensor x = Batch(batch);
      const std::vector<float> reference =
          entry->PredictReference(x).ToVector();
      for (const int threads : {1, 2, 4}) {
        exec::ExecutionContext context({.threads = threads});
        exec::ExecutionContext::Bind bind(&context);
        EXPECT_TRUE(BitEqual(entry->Predict(x).ToVector(), reference))
            << name << " batch " << batch << " threads " << threads;
      }
    }
  }
}

// ---- Execution out of pre-bound buffers -------------------------------------

// After the first (compiling) call on a bucket, plan execution runs
// entirely out of buffers bound at compile time: repeated predictions
// acquire nothing further from the context's BufferPool.
TEST(PlanExecution, SteadyStateAcquiresNoPoolBuffers) {
  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("STGCN");
  spec.warmup = false;  // keep the load-time warmup off this pool's books
  TB_CHECK_OK(registry.Load(spec));
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);
  ASSERT_NE(entry, nullptr);

  exec::ExecutionContext context({.threads = 1});
  exec::ExecutionContext::Bind bind(&context);
  const Tensor x = Batch(4);
  entry->Predict(x);  // compiles the bucket and binds its buffers
  ASSERT_TRUE(entry->plans_active()) << entry->plan_summary();

  const BufferPool::Stats warm = context.buffer_pool()->stats();
  std::vector<float> first = entry->Predict(x).ToVector();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(BitEqual(entry->Predict(x).ToVector(), first));
  }
  const BufferPool::Stats steady = context.buffer_pool()->stats();
  EXPECT_EQ(steady.hits + steady.misses, warm.hits + warm.misses)
      << "plan execution acquired pool buffers in steady state";
}

// Fused plan steps dispatch under OpKind::kFusedEpilogue, so profiled
// contexts show fused vs unfused kernel counts side by side.
TEST(PlanExecution, FusedStepsRecordUnderFusedEpilogue) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);
  ASSERT_NE(entry, nullptr);

  exec::ExecutionContext context({.threads = 1, .profile = true});
  exec::ExecutionContext::Bind bind(&context);
  entry->Predict(Batch(2));
  ASSERT_TRUE(entry->plans_active()) << entry->plan_summary();
  context.profiler().Reset();
  entry->Predict(Batch(2));

  const exec::OpStats fused =
      context.profiler().stats(exec::OpKind::kFusedEpilogue);
  EXPECT_GT(fused.calls, 0);
  EXPECT_GT(fused.flops, 0.0);
}

// ---- Fallbacks --------------------------------------------------------------

// The plan_compile fault site fails compilation at model-load time; the
// registry must disable plans for the entry and serve the eager forward,
// bit-identical and with no error surfaced to the caller.
TEST(PlanFault, CompileFaultFallsBackToEager) {
  ScopedFault fault("plan_compile@1");
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kPlanCompile), 1);

  EXPECT_FALSE(entry->plans_active());
  EXPECT_NE(entry->plan_summary().find("plans off"), std::string::npos)
      << entry->plan_summary();
  const Tensor x = Batch(4);
  EXPECT_TRUE(BitEqual(entry->Predict(x).ToVector(),
                       entry->PredictReference(x).ToVector()));
}

// Baselines compute their predictions host-side, so their traced outputs
// do not depend on the plan input; the compiler must reject them (baking
// the traced values would serve stale constants) and the entry must fall
// back to eager.
TEST(PlanFault, HostComputedBaselineFallsBackToEager) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("HistoricalAverage")));
  serve::LoadedModelPtr entry = registry.Find("HistoricalAverage", kDataset);
  ASSERT_NE(entry, nullptr);

  EXPECT_FALSE(entry->plans_active());
  EXPECT_NE(entry->plan_summary().find("plans off"), std::string::npos)
      << entry->plan_summary();
  const Tensor x = Batch(2);
  EXPECT_TRUE(BitEqual(entry->Predict(x).ToVector(),
                       entry->PredictReference(x).ToVector()));
}

// A spec can opt an entry out of plan compilation entirely.
TEST(PlanFault, SpecCanDisablePlans)  {
  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("STGCN");
  spec.compile_plans = false;
  TB_CHECK_OK(registry.Load(spec));
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->plans_active());
  const Tensor x = Batch(1);
  EXPECT_TRUE(BitEqual(entry->Predict(x).ToVector(),
                       entry->PredictReference(x).ToVector()));
}

// ---- Compiler internals -----------------------------------------------------

// Tracing an STGCN forward and compiling it directly: the optimization
// passes must do real work (fusion, reshape elision, step elimination) and
// the summary must reflect the counts.
TEST(PlanCompile, PassesFuseElideAndAssignBuffers) {
  auto model = models::CreateModel(
      "STGCN", models::MakeModelContext(TinyDataset(), /*seed=*/2021));
  TB_CHECK(model != nullptr);
  NoGradGuard no_grad;
  Tensor x = Tensor::Zeros(
      {2, TinyDataset().input_len(), TinyDataset().num_nodes(), 2});
  trace::Tracer tracer;
  Tensor y;
  {
    trace::Tracer::Scope scope(&tracer);
    y = model->Forward(x, Tensor());
  }
  Result<std::shared_ptr<const plan::InferencePlan>> compiled =
      plan::Compile(tracer, x.impl(), y.impl());
  TB_CHECK_OK(compiled.status());
  const plan::InferencePlan& plan = *compiled.value();

  EXPECT_GT(plan.stats.fused, 0);
  EXPECT_GT(plan.stats.elided, 0);
  EXPECT_LT(plan.stats.steps, plan.stats.traced_steps);
  EXPECT_GT(plan.stats.buffers, 0);
  EXPECT_LT(plan.stats.buffers, plan.stats.steps)
      << "liveness assignment did not recycle buffers";
  EXPECT_NE(plan.Summary().find("fused"), std::string::npos);
  EXPECT_EQ(plan.input_shape, x.shape());
  EXPECT_EQ(plan.output_shape, y.shape());
}

// The compiler refuses to bake an output that does not depend on the
// traced input (e.g. a host-computed baseline prediction).
TEST(PlanCompile, RejectsInputIndependentOutput) {
  auto model = models::CreateModel(
      "HistoricalAverage",
      models::MakeModelContext(TinyDataset(), /*seed=*/2021));
  TB_CHECK(model != nullptr);
  NoGradGuard no_grad;
  Tensor x = Tensor::Zeros(
      {1, TinyDataset().input_len(), TinyDataset().num_nodes(), 2});
  trace::Tracer tracer;
  Tensor y;
  {
    trace::Tracer::Scope scope(&tracer);
    y = model->Forward(x, Tensor());
  }
  Result<std::shared_ptr<const plan::InferencePlan>> compiled =
      plan::Compile(tracer, x.impl(), y.impl());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compiled.status().message().find("depend"), std::string::npos)
      << compiled.status().ToString();
}

}  // namespace
}  // namespace trafficbench
