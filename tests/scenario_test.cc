// Scenario engine suite: seeded demand generation and calibration, the
// routing engine's determinism contract (byte-identical series at every
// thread count), causal rerouting under a scripted bridge closure,
// blackout masking with exact masked_entries accounting, the ground-truth
// incident log, the scenario_route fault site's detect-and-recompute
// behaviour, and the robustness matrix's pinned cross-family finding
// (persistence collapses after sensor blackouts, historical profiles do
// not).

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/traffic_simulator.h"
#include "src/eval/difficult_intervals.h"
#include "src/exec/execution_context.h"
#include "src/graph/road_network.h"
#include "src/scenario/matrix.h"
#include "src/scenario/routing.h"
#include "src/scenario/scenario.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using exec::ExecOptions;
using exec::ExecutionContext;
using graph::NetworkTopology;
using graph::RoadClass;
using graph::RoadNetwork;
using graph::RoadSegment;
using graph::Sensor;
using scenario::CalibrateDemand;
using scenario::DemandModel;
using scenario::FreeFlowPeakFlows;
using scenario::MatrixCell;
using scenario::MatrixOptions;
using scenario::NodesWithinHops;
using scenario::RoutingOptions;
using scenario::RoutingReport;
using scenario::RouteTraffic;
using scenario::RunScenario;
using scenario::Scenario;
using scenario::ScenarioEvent;
using scenario::ScenarioMatrixResult;
using scenario::ScenarioRun;
using scenario::StepModifiers;

class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    Result<FaultInjector> parsed = FaultInjector::Parse(spec);
    TB_CHECK(parsed.ok()) << parsed.status().ToString();
    FaultInjector::SetGlobal(std::move(parsed).value());
  }
  ~ScopedFault() { FaultInjector::SetGlobal(FaultInjector()); }
};

/// A seeded capacity-carrying grid+arterial world with calibrated demand.
struct World {
  RoadNetwork network;
  DemandModel demand;
};

World MakeWorld(int64_t num_nodes, uint64_t seed) {
  Rng rng(seed);
  RoadNetwork network =
      RoadNetwork::Generate(NetworkTopology::kGridArterial, num_nodes, &rng)
          .DeriveCapacities(NetworkTopology::kGridArterial);
  DemandModel demand = DemandModel::Generate(network, seed ^ 0x9e3779b9ull);
  CalibrateDemand(network, &demand, /*target_peak_utilization=*/0.85);
  return {std::move(network), std::move(demand)};
}

// ---- Demand model ----------------------------------------------------------

TEST(Scenario, DiurnalIntensityHasCommutePeaksAndStaysInRange) {
  const double am = DemandModel::DiurnalIntensity(8.0 / 24.0, 1.0, 0.0);
  const double pm = DemandModel::DiurnalIntensity(17.5 / 24.0, 0.0, 1.0);
  const double night = DemandModel::DiurnalIntensity(3.0 / 24.0, 1.0, 1.0);
  EXPECT_GT(am, 3.0 * night);
  EXPECT_GT(pm, 3.0 * night);
  for (int i = 0; i < 288; ++i) {
    const double u = i / 288.0;
    const double v = DemandModel::DiurnalIntensity(u, 0.7, 1.3);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Scenario, DemandGenerationIsDeterministicAndCalibrationHitsTarget) {
  World world = MakeWorld(24, 7);
  DemandModel again = DemandModel::Generate(world.network, 7 ^ 0x9e3779b9ull);
  CalibrateDemand(world.network, &again, 0.85);
  ASSERT_EQ(world.demand.pairs.size(), again.pairs.size());
  for (size_t i = 0; i < again.pairs.size(); ++i) {
    EXPECT_EQ(world.demand.pairs[i].origin, again.pairs[i].origin);
    EXPECT_EQ(world.demand.pairs[i].destination, again.pairs[i].destination);
    EXPECT_DOUBLE_EQ(world.demand.pairs[i].base_demand,
                     again.pairs[i].base_demand);
  }
  // Every origin originates trips, and the busiest segment's free-flow peak
  // assignment sits exactly at the calibration target.
  const std::vector<double> flows =
      FreeFlowPeakFlows(world.network, world.demand);
  double peak_util = 0.0;
  for (size_t i = 0; i < flows.size(); ++i) {
    const RoadSegment& seg = world.network.segments()[i];
    ASSERT_GT(seg.capacity_per_step, 0.0);
    ASSERT_GT(seg.free_flow_mph, 0.0);
    ASSERT_NE(seg.road_class, RoadClass::kUnclassified);
    peak_util = std::max(peak_util, flows[i] / seg.capacity_per_step);
  }
  EXPECT_NEAR(peak_util, 0.85, 1e-9);
}

// ---- Routing determinism ---------------------------------------------------

TEST(Scenario, RoutedSeriesIsByteIdenticalAtEveryThreadCount) {
  World world = MakeWorld(24, 11);
  data::TrafficSeries reference;
  RoutingReport reference_report;
  for (int threads : {1, 2, 4}) {
    ExecutionContext ctx(ExecOptions{threads, false});
    RoutingOptions options;
    options.num_days = 1;
    options.exec = &ctx;
    Rng rng(123);
    RoutingReport report;
    data::TrafficSeries series =
        RouteTraffic(world.network, world.demand, options, &rng, &report);
    ASSERT_EQ(series.num_steps, data::kStepsPerDay);
    ASSERT_EQ(series.num_nodes, world.network.num_nodes());
    if (threads == 1) {
      reference = std::move(series);
      reference_report = std::move(report);
      continue;
    }
    // Bitwise: float vector equality admits no tolerance.
    EXPECT_EQ(reference.values, series.values) << "threads=" << threads;
    EXPECT_EQ(reference.time_of_day, series.time_of_day);
    EXPECT_EQ(reference.day_of_week, series.day_of_week);
    ASSERT_EQ(reference_report.edge_utilization.size(),
              report.edge_utilization.size());
    for (size_t i = 0; i < report.edge_utilization.size(); ++i) {
      EXPECT_DOUBLE_EQ(reference_report.edge_utilization[i].mean,
                       report.edge_utilization[i].mean);
      EXPECT_DOUBLE_EQ(reference_report.edge_utilization[i].peak,
                       report.edge_utilization[i].peak);
    }
  }
  // The routed world produces live, mostly-present readings.
  int64_t nonzero = 0;
  for (float v : reference.values) nonzero += (v != 0.0f);
  EXPECT_GT(nonzero, static_cast<int64_t>(reference.values.size() * 9 / 10));
}

// ---- Causal rerouting ------------------------------------------------------

TEST(Scenario, BridgeClosureRedirectsDemandOntoTheParallelPath) {
  // Two routes from 0 to 1: a fast freeway bridge (segment 0) and an
  // arterial detour through node 2 (segments 1, 2). Under free flow every
  // trip takes the bridge; closing it must spill the demand onto the
  // detour — profile-sampled simulators cannot produce this causality.
  std::vector<Sensor> sensors = {{0, 0.0, 0.0}, {1, 2.0, 0.0}, {2, 1.0, 1.0}};
  std::vector<RoadSegment> segments = {
      {0, 1, 1.0, RoadClass::kFreeway, 3, 65.0, 300.0},
      {0, 2, 1.2, RoadClass::kArterial, 2, 40.0, 120.0},
      {2, 1, 1.2, RoadClass::kArterial, 2, 40.0, 120.0},
  };
  RoadNetwork network(sensors, segments);
  DemandModel demand;
  demand.pairs = {{0, 1, 150.0, 1.0, 1.0}};
  demand.attraction = {1.0, 1.0, 1.0};

  RoutingOptions open_options;
  open_options.num_days = 1;
  open_options.noise_level = 0.0;
  open_options.missing_rate = 0.0;
  Rng open_rng(5);
  RoutingReport open_report;
  data::TrafficSeries open_series =
      RouteTraffic(network, demand, open_options, &open_rng, &open_report);

  RoutingOptions closed_options = open_options;
  closed_options.modifiers = [](int64_t /*step*/, StepModifiers* mods) {
    mods->capacity_scale[0] = 0.02;  // the bridge is down all day
  };
  Rng closed_rng(5);
  RoutingReport closed_report;
  data::TrafficSeries closed_series =
      RouteTraffic(network, demand, closed_options, &closed_rng,
                   &closed_report);

  // Open world: the bridge carries the load, the detour idles.
  EXPECT_GT(open_report.edge_utilization[0].peak, 0.1);
  EXPECT_LT(open_report.edge_utilization[1].mean, 0.01);
  // Closed world: detour utilization rises strictly on both detour legs.
  EXPECT_GT(closed_report.edge_utilization[1].mean,
            open_report.edge_utilization[1].mean + 0.01);
  EXPECT_GT(closed_report.edge_utilization[2].mean,
            open_report.edge_utilization[2].mean + 0.01);
  // And the congestion is visible in the sensed series: the detour node
  // slows down at the demand peak.
  const int64_t am_peak = 96;  // 8:00
  EXPECT_LT(closed_series.at(am_peak, 2), open_series.at(am_peak, 2));
}

// ---- Scenario scripting ----------------------------------------------------

TEST(Scenario, BlackoutZeroesTheRegionAndAccountsEveryMaskedEntry) {
  World world = MakeWorld(24, 13);
  RoutingOptions options;
  options.num_days = 1;

  Rng baseline_rng(31);
  ScenarioRun baseline = RunScenario(world.network, world.demand,
                                     scenario::BaselineScenario(), options,
                                     &baseline_rng);
  Scenario blackout =
      scenario::BlackoutScenario(world.network, world.demand, 1);
  ASSERT_EQ(blackout.events.size(), 1u);
  const ScenarioEvent& event = blackout.events[0];
  ASSERT_EQ(event.kind, scenario::EventKind::kSensorBlackout);
  Rng blackout_rng(31);
  ScenarioRun run = RunScenario(world.network, world.demand, blackout,
                                options, &blackout_rng);

  const std::vector<int64_t> region =
      NodesWithinHops(world.network, {event.target_node}, event.radius_hops);
  std::vector<uint8_t> in_region(world.network.num_nodes(), 0);
  for (int64_t node : region) in_region[node] = 1;

  // Sensing failed; the world did not: outside the blacked-out rectangle
  // the two runs are byte-identical, inside it every reading is 0, and
  // masked_entries counts exactly the readings that were lost (already-
  // missing dropouts are not double-counted).
  int64_t lost = 0;
  for (int64_t step = 0; step < run.series.num_steps; ++step) {
    const bool in_window =
        step >= event.start_step && step < event.start_step + event.duration;
    for (int64_t node = 0; node < run.series.num_nodes; ++node) {
      const float base = baseline.series.at(step, node);
      const float got = run.series.at(step, node);
      if (in_window && in_region[node]) {
        EXPECT_EQ(got, 0.0f);
        if (base != 0.0f) ++lost;
      } else {
        EXPECT_EQ(base, got);
      }
    }
  }
  EXPECT_GT(lost, 0);
  EXPECT_EQ(run.series.masked_entries, lost);
  EXPECT_EQ(baseline.series.masked_entries, 0);

  // Ground truth rides with the series: the event log records the blackout
  // and the difficult labels cover the region into the recovery window,
  // where forecasting from zero-filled history is the hard part.
  ASSERT_EQ(run.series.incidents.size(), 1u);
  EXPECT_EQ(run.series.incidents[0].node, event.target_node);
  EXPECT_EQ(run.series.incidents[0].onset_step, event.start_step);
  ASSERT_EQ(run.difficult_mask.size(), run.series.values.size());
  const int64_t post = event.start_step + event.duration + 6;
  ASSERT_LT(post, run.series.num_steps);
  for (int64_t node : region) {
    EXPECT_EQ(run.difficult_mask[event.start_step * run.series.num_nodes +
                                 node],
              1);
    EXPECT_EQ(run.difficult_mask[post * run.series.num_nodes + node], 1);
  }
  EXPECT_GT(eval::MaskFraction(run.difficult_mask), 0.0);
}

TEST(Scenario, IncidentLogIsSortedByOnsetAcrossMultiDayScenarios) {
  World world = MakeWorld(24, 17);
  RoutingOptions options;
  options.num_days = 2;
  for (Scenario& s :
       scenario::CanonicalScenarios(world.network, world.demand, 2)) {
    Rng rng(41);
    ScenarioRun run = RunScenario(world.network, world.demand, s, options,
                                  &rng);
    ASSERT_EQ(run.series.incidents.size(), s.events.size()) << s.name;
    for (size_t i = 1; i < run.series.incidents.size(); ++i) {
      EXPECT_LE(run.series.incidents[i - 1].onset_step,
                run.series.incidents[i].onset_step)
          << s.name;
    }
    for (const data::TrafficIncident& incident : run.series.incidents) {
      EXPECT_GE(incident.severity, 0.0);
      EXPECT_LE(incident.severity, 1.0);
      EXPECT_GT(incident.duration, 0);
    }
    EXPECT_GT(eval::MaskFraction(run.difficult_mask), 0.0) << s.name;
  }
}

// ---- scenario_route fault site ---------------------------------------------

TEST(ScenarioFault, CorruptedRoutingTableIsDetectedRecomputedAndHarmless) {
  World world = MakeWorld(24, 19);
  RoutingOptions options;
  options.num_days = 1;

  Rng clean_rng(61);
  data::TrafficSeries clean =
      RouteTraffic(world.network, world.demand, options, &clean_rng);

  ScopedFault fault("scenario_route@5");
  Rng faulty_rng(61);
  RoutingReport report;
  data::TrafficSeries faulty = RouteTraffic(world.network, world.demand,
                                            options, &faulty_rng, &report);
  const int64_t fired =
      FaultInjector::Global().fired(FaultSite::kScenarioRoute);
  EXPECT_GE(fired, 1);
  // Every corrupted routing table tripped the path-cost invariant and was
  // recomputed, so the emitted series is bit-identical to the clean run.
  EXPECT_EQ(report.fault_recomputes, fired);
  EXPECT_EQ(clean.values, faulty.values);
  EXPECT_EQ(clean.time_of_day, faulty.time_of_day);
}

// ---- The robustness matrix and its pinned finding --------------------------

TEST(ScenarioMatrix, PersistenceCollapsesUnderBlackoutWhileProfilesHold) {
  MatrixOptions options;
  options.num_nodes = 24;
  options.train_days = 2;
  options.eval_days = 1;
  options.model_names = {"HistoricalAverage", "LastValue"};
  // Defaults (eval_cap 160, seed 2021) pin the run; baselines need no
  // training epochs, so this stays test-budget cheap.
  ScenarioMatrixResult result = scenario::RunScenarioMatrix(options);
  EXPECT_TRUE(result.failed_models.empty());
  ASSERT_EQ(result.scenarios.size(), 5u);  // baseline + 4 disruption classes
  EXPECT_EQ(result.scenarios[0].name, "baseline");
  ASSERT_EQ(result.cells.size(), 2u * 5u);

  const MatrixCell* ha = result.Cell("HistoricalAverage", "blackout");
  const MatrixCell* lv = result.Cell("LastValue", "blackout");
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(lv, nullptr);
  ASSERT_GT(ha->difficult.count, 0);
  ASSERT_GT(lv->difficult.count, 0);

  // The pinned cross-family finding: a persistence forecaster's inputs are
  // the blacked-out zeros, so its post-blackout error explodes, while the
  // historical-profile baseline never looks at recent inputs and is immune.
  // (Full-scale numbers: LastValue blackout degradation ~1.9 and difficult
  // MAE ~16x HistoricalAverage's, which stays within 1.1x of baseline.)
  EXPECT_GT(lv->degradation, 1.4);
  EXPECT_LT(ha->degradation, 1.1);
  EXPECT_GT(lv->difficult.mae, 5.0 * ha->difficult.mae);
  EXPECT_EQ(result.WorstScenario("LastValue"), "blackout");

  // Gridlock degrades both families: it changes the traffic itself, which
  // no inductive bias is immune to.
  const MatrixCell* ha_grid = result.Cell("HistoricalAverage", "gridlock");
  const MatrixCell* lv_grid = result.Cell("LastValue", "gridlock");
  ASSERT_NE(ha_grid, nullptr);
  ASSERT_NE(lv_grid, nullptr);
  EXPECT_GT(ha_grid->degradation, 1.15);
  EXPECT_GT(lv_grid->degradation, 1.15);

  // Baseline column: degradation is 1 by construction, no difficult cells.
  const MatrixCell* base = result.Cell("LastValue", "baseline");
  ASSERT_NE(base, nullptr);
  EXPECT_DOUBLE_EQ(base->degradation, 1.0);
  EXPECT_EQ(base->difficult.count, 0);
}

}  // namespace
}  // namespace trafficbench
