// Tests for checkpoint save/load: round trips, strict validation, and a
// full trained-model restore producing identical predictions.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"
#include "src/nn/serialize.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TwoLayer : public nn::Module {
 public:
  explicit TwoLayer(Rng* rng) {
    a = RegisterModule("a", std::make_shared<nn::Linear>(3, 4, rng));
    b = RegisterModule("b", std::make_shared<nn::Linear>(4, 2, rng));
  }
  std::shared_ptr<nn::Linear> a, b;
};

TEST(Serialize, RoundTripRestoresExactValues) {
  Rng rng(1);
  TwoLayer source(&rng);
  const std::string path = TempPath("tb_ckpt_roundtrip.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(source, path));

  Rng rng2(999);  // different init
  TwoLayer target(&rng2);
  TB_CHECK_OK(nn::LoadCheckpoint(&target, path));

  auto src = source.NamedParameters();
  auto dst = target.NamedParameters();
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(src[i].first, dst[i].first);
    EXPECT_EQ(src[i].second.ToVector(), dst[i].second.ToVector());
  }
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsWrongMagic) {
  const std::string path = TempPath("tb_ckpt_bad_magic.bin");
  std::ofstream(path) << "definitely not a checkpoint";
  Rng rng(2);
  TwoLayer model(&rng);
  Status status = nn::LoadCheckpoint(&model, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsMissingFile) {
  Rng rng(3);
  TwoLayer model(&rng);
  Status status = nn::LoadCheckpoint(&model, "/nonexistent/dir/x.bin");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(Serialize, RejectsParameterCountMismatch) {
  Rng rng(4);
  TwoLayer big(&rng);
  const std::string path = TempPath("tb_ckpt_count.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(big, path));
  nn::Linear small(3, 4, &rng);
  Status status = nn::LoadCheckpoint(&small, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsShapeMismatch) {
  Rng rng(5);
  nn::Linear a(3, 4, &rng);
  const std::string path = TempPath("tb_ckpt_shape.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(a, path));
  nn::Linear b(4, 3, &rng);  // same parameter names, different shapes
  Status status = nn::LoadCheckpoint(&b, path);
  EXPECT_FALSE(status.ok());
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsTruncatedData) {
  Rng rng(6);
  TwoLayer model(&rng);
  const std::string path = TempPath("tb_ckpt_trunc.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(model, path));
  // Chop off the last 8 bytes.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  Status status = nn::LoadCheckpoint(&model, path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  std::filesystem::remove(path);
}

class EdgeCaseNet : public nn::Module {
 public:
  EdgeCaseNet() {
    empty = RegisterParameter("empty", Tensor::Zeros(Shape({0, 3})));
    values = RegisterParameter("values", Tensor::Zeros(Shape({4})));
  }
  Tensor empty, values;
};

TEST(Serialize, ZeroSizedParameterRoundTrips) {
  EdgeCaseNet source;
  const std::string path = TempPath("tb_ckpt_zero_sized.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(source, path));
  EdgeCaseNet target;
  target.values.data()[0] = 99.0f;  // must be overwritten
  TB_CHECK_OK(nn::LoadCheckpoint(&target, path));
  EXPECT_EQ(target.empty.numel(), 0);
  EXPECT_EQ(target.values.ToVector(), source.values.ToVector());
  std::filesystem::remove(path);
}

TEST(Serialize, NonFiniteParameterValuesRoundTripExactly) {
  // Checkpoints are byte-exact: a NaN/inf snapshot (e.g. saved right before
  // a divergence was detected) must come back as-is, not sanitized.
  EdgeCaseNet source;
  float* data = source.values.data();
  data[0] = std::numeric_limits<float>::quiet_NaN();
  data[1] = std::numeric_limits<float>::infinity();
  data[2] = -std::numeric_limits<float>::infinity();
  data[3] = -0.0f;
  const std::string path = TempPath("tb_ckpt_nonfinite.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(source, path));
  EdgeCaseNet target;
  TB_CHECK_OK(nn::LoadCheckpoint(&target, path));
  const std::vector<float> loaded = target.values.ToVector();
  EXPECT_TRUE(std::isnan(loaded[0]));
  EXPECT_EQ(loaded[1], std::numeric_limits<float>::infinity());
  EXPECT_EQ(loaded[2], -std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::signbit(loaded[3]));
  std::filesystem::remove(path);
}

TEST(Serialize, DuplicateParameterNamesRejectedWithName) {
  class DupNet : public nn::Module {
   public:
    DupNet() {
      RegisterParameter("twice", Tensor::Zeros(Shape({2})));
      RegisterParameter("twice", Tensor::Zeros(Shape({2})));
    }
  } model;
  const std::string path = TempPath("tb_ckpt_dup.bin");
  Status status = nn::SaveCheckpoint(model, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("twice"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Serialize, LoadCheckpointReadsV2ParamsIgnoringTrainState) {
  // Backward-facing interop: evaluate-time LoadCheckpoint accepts a TBCKPT2
  // training checkpoint and applies just the parameters.
  Rng rng(31);
  TwoLayer source(&rng);
  nn::TrainState state;
  state.epoch = 2;
  state.learning_rate = 1e-3;
  const std::string path = TempPath("tb_ckpt_v2_params.bin");
  TB_CHECK_OK(nn::SaveTrainCheckpoint(source, state, path));

  Rng rng2(32);
  TwoLayer target(&rng2);
  TB_CHECK_OK(nn::LoadCheckpoint(&target, path));
  auto src = source.NamedParameters();
  auto dst = target.NamedParameters();
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(src[i].second.ToVector(), dst[i].second.ToVector());
  }
  std::filesystem::remove(path);
}

TEST(Serialize, V1CheckpointsStayLoadable) {
  // TBCKPT1 files from before the fault-tolerance work keep loading (the
  // format is unchanged; this pins backward compatibility explicitly).
  Rng rng(33);
  TwoLayer source(&rng);
  const std::string path = TempPath("tb_ckpt_v1_compat.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(source, path));
  std::ifstream in(path, std::ios::binary);
  char magic[8];
  in.read(magic, 8);
  EXPECT_EQ(std::string(magic, 8), "TBCKPT1\n");
  Rng rng2(34);
  TwoLayer target(&rng2);
  TB_CHECK_OK(nn::LoadCheckpoint(&target, path));
  std::filesystem::remove(path);
}

TEST(Serialize, TrainedModelRestoresIdenticalPredictions) {
  data::DatasetProfile profile;
  profile.num_nodes = 8;
  profile.num_days = 4;
  profile.seed = 88;
  data::TrafficDataset dataset = data::TrafficDataset::FromProfile(profile);
  models::ModelContext context = models::MakeModelContext(dataset, 17);

  auto trained = models::CreateModel("Graph-WaveNet", context);
  eval::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 5;
  TrainModel(trained.get(), dataset, config);

  const std::string path = TempPath("tb_ckpt_model.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(*trained, path));

  auto restored = models::CreateModel("Graph-WaveNet", context);
  TB_CHECK_OK(nn::LoadCheckpoint(restored.get(), path));

  data::Batch batch = dataset.MakeBatch({0, 7, 33});
  trained->SetTraining(false);
  restored->SetTraining(false);
  NoGradGuard no_grad;
  Tensor expected = trained->Forward(batch.x, Tensor());
  Tensor actual = restored->Forward(batch.x, Tensor());
  EXPECT_EQ(expected.ToVector(), actual.ToVector());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace trafficbench
