// Tests for the NN module layer: parameter registration, each layer's
// forward semantics, and gradient flow through composed modules.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/nn/module.h"
#include "src/optim/optimizer.h"
#include "src/tensor/gradcheck.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

TEST(Module, RegistersParametersRecursively) {
  class Inner : public nn::Module {
   public:
    explicit Inner(Rng* rng) {
      w = RegisterParameter("w", Tensor::Randn(Shape({2, 3}), rng));
    }
    Tensor w;
  };
  class Outer : public nn::Module {
   public:
    explicit Outer(Rng* rng) {
      b = RegisterParameter("b", Tensor::Zeros(Shape({4})));
      inner = RegisterModule("inner", std::make_shared<Inner>(rng));
    }
    Tensor b;
    std::shared_ptr<Inner> inner;
  };
  Rng rng(1);
  Outer outer(&rng);
  EXPECT_EQ(outer.ParameterCount(), 4 + 6);
  auto named = outer.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "b");
  EXPECT_EQ(named[1].first, "inner.w");
  for (const Tensor& p : outer.Parameters()) {
    EXPECT_TRUE(p.requires_grad());
  }
}

TEST(Module, TrainingFlagPropagates) {
  class Child : public nn::Module {};
  class Parent : public nn::Module {
   public:
    Parent() { child = RegisterModule("c", std::make_shared<Child>()); }
    std::shared_ptr<Child> child;
  };
  Parent parent;
  EXPECT_TRUE(parent.training());
  parent.SetTraining(false);
  EXPECT_FALSE(parent.training());
  EXPECT_FALSE(parent.child->training());
}

TEST(LinearLayer, AffineMapAndShapes) {
  Rng rng(2);
  nn::Linear linear(3, 2, &rng);
  EXPECT_EQ(linear.ParameterCount(), 3 * 2 + 2);
  // Rank-3 input maps the last axis.
  Tensor x = Tensor::Ones(Shape({4, 5, 3}));
  Tensor y = linear.Forward(x);
  EXPECT_EQ(y.shape(), Shape({4, 5, 2}));
  // Rank-1 input works too.
  EXPECT_EQ(linear.Forward(Tensor::Ones(Shape({3}))).shape(), Shape({2}));
}

TEST(LinearLayer, NoBiasOption) {
  Rng rng(3);
  nn::Linear linear(3, 2, &rng, /*use_bias=*/false);
  EXPECT_EQ(linear.ParameterCount(), 6);
  Tensor y = linear.Forward(Tensor::Zeros(Shape({1, 3})));
  EXPECT_FLOAT_EQ(y.At({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(y.At({0, 1}), 0.0f);
}

TEST(EmbeddingLayer, LookupMatchesTable) {
  Rng rng(4);
  nn::Embedding embedding(5, 3, &rng);
  Tensor rows = embedding.Forward({4, 0, 4});
  EXPECT_EQ(rows.shape(), Shape({3, 3}));
  EXPECT_FLOAT_EQ(rows.At({0, 1}), embedding.Table().At({4, 1}));
  EXPECT_FLOAT_EQ(rows.At({1, 2}), embedding.Table().At({0, 2}));
  EXPECT_FLOAT_EQ(rows.At({2, 0}), rows.At({0, 0}));
}

TEST(LayerNormLayer, NormalizesLastAxis) {
  nn::LayerNorm norm(4);
  Tensor x = Tensor::FromVector(Shape({2, 4}),
                                {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = norm.Forward(x);
  for (int64_t row = 0; row < 2; ++row) {
    double sum = 0, sq = 0;
    for (int64_t c = 0; c < 4; ++c) {
      sum += y.At({row, c});
      sq += y.At({row, c}) * y.At({row, c});
    }
    EXPECT_NEAR(sum / 4.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 4.0, 1.0, 1e-2);
  }
}

TEST(DropoutLayer, IdentityInEvalScaledInTrain) {
  nn::Dropout dropout(0.5f, 99);
  Tensor x = Tensor::Ones(Shape({1000}));
  dropout.SetTraining(false);
  EXPECT_EQ(dropout.Forward(x).ToVector(), x.ToVector());
  dropout.SetTraining(true);
  Tensor y = dropout.Forward(x);
  int64_t zeros = 0;
  double sum = 0;
  for (float v : y.ToVector()) {
    if (v == 0.0f) ++zeros;
    sum += v;
  }
  EXPECT_NEAR(zeros, 500, 80);            // about half dropped
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);   // inverted scaling preserves mean
}

TEST(GruCellLayer, StateEvolvesAndIsBounded) {
  Rng rng(5);
  nn::GRUCell cell(3, 4, &rng);
  Tensor x = Tensor::Randn(Shape({2, 3}), &rng);
  Tensor h = Tensor::Zeros(Shape({2, 4}));
  Tensor h1 = cell.Forward(x, h);
  EXPECT_EQ(h1.shape(), Shape({2, 4}));
  Tensor h2 = cell.Forward(x, h1);
  EXPECT_NE(h1.ToVector(), h2.ToVector());
  for (float v : h2.ToVector()) {
    EXPECT_LE(std::fabs(v), 1.0f);  // tanh-bounded candidate keeps |h| <= 1
  }
}

TEST(Attention, UniformWhenQueriesMatchNothing) {
  // Zero queries -> uniform attention -> output equals mean of values.
  Tensor q = Tensor::Zeros(Shape({1, 1, 4}));
  Tensor k = Tensor::FromVector(Shape({1, 2, 4}),
                                {1, 0, 0, 0, 0, 1, 0, 0});
  Tensor v = Tensor::FromVector(Shape({1, 2, 2}), {0, 0, 10, 20});
  Tensor out = nn::ScaledDotProductAttention(q, k, v);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2}));
  EXPECT_NEAR(out.At({0, 0, 0}), 5.0f, 1e-4);
  EXPECT_NEAR(out.At({0, 0, 1}), 10.0f, 1e-4);
}

TEST(Attention, SharpQueriesSelectMatchingValue) {
  // A query aligned with key 1 and scaled large picks value row 1.
  Tensor q = Tensor::FromVector(Shape({1, 1, 2}), {0.0f, 50.0f});
  Tensor k = Tensor::FromVector(Shape({1, 2, 2}), {1, 0, 0, 1});
  Tensor v = Tensor::FromVector(Shape({1, 2, 1}), {-3.0f, 7.0f});
  Tensor out = nn::ScaledDotProductAttention(q, k, v);
  EXPECT_NEAR(out.At({0, 0, 0}), 7.0f, 1e-3);
}

TEST(MultiHeadAttentionLayer, ShapePreservedAcrossRanks) {
  Rng rng(6);
  nn::MultiHeadAttention mha(8, 2, &rng);
  Tensor x3 = Tensor::Randn(Shape({2, 5, 8}), &rng);
  EXPECT_EQ(mha.Forward(x3, x3, x3).shape(), Shape({2, 5, 8}));
  Tensor x4 = Tensor::Randn(Shape({2, 3, 5, 8}), &rng);
  EXPECT_EQ(mha.Forward(x4, x4, x4).shape(), Shape({2, 3, 5, 8}));
}

TEST(MultiHeadAttentionLayer, CrossAttentionLengths) {
  Rng rng(7);
  nn::MultiHeadAttention mha(8, 4, &rng);
  Tensor q = Tensor::Randn(Shape({2, 3, 8}), &rng);
  Tensor kv = Tensor::Randn(Shape({2, 6, 8}), &rng);
  EXPECT_EQ(mha.Forward(q, kv, kv).shape(), Shape({2, 3, 8}));
}

TEST(Conv2dLayerModule, MatchesFreeFunction) {
  Rng rng(8);
  nn::Conv2dLayer conv(2, 3, 1, 2, &rng);
  Tensor x = Tensor::Randn(Shape({1, 2, 4, 6}), &rng);
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 3, 4, 5}));
}

TEST(ComposedModules, GradCheckThroughLinearAndNorm) {
  Rng rng(9);
  auto linear = std::make_shared<nn::Linear>(3, 4, &rng);
  auto norm = std::make_shared<nn::LayerNorm>(4);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Tensor>& inputs) {
        return norm->Forward(linear->Forward(inputs[0])).Pow(2.0f).SumAll();
      },
      {Tensor::Rand(Shape({2, 3}), &rng, -1, 1).set_requires_grad(true)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(ComposedModules, TrainLinearRegression) {
  // y = x * 2 - 1 learned by a Linear via Adam in a few hundred steps.
  Rng rng(10);
  auto model = std::make_shared<nn::Linear>(1, 1, &rng);
  optim::Adam adam(model->Parameters(), {.learning_rate = 0.05});
  double last_loss = 1e9;
  for (int step = 0; step < 200; ++step) {
    Tensor x = Tensor::Rand(Shape({16, 1}), &rng, -1, 1);
    std::vector<float> target(16);
    for (int i = 0; i < 16; ++i) target[i] = 2.0f * x.data()[i] - 1.0f;
    Tensor y = Tensor::FromVector(Shape({16, 1}), std::move(target));
    adam.ZeroGrad();
    Tensor loss = (model->Forward(x) - y).Pow(2.0f).MeanAll();
    loss.Backward();
    adam.Step();
    last_loss = loss.Item();
  }
  EXPECT_LT(last_loss, 1e-3);
}

}  // namespace
}  // namespace trafficbench
