// Tests for the evaluation layer: masked metrics, the masked-MAE loss,
// difficult-interval extraction, and repeated-trial statistics.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/data/traffic_simulator.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/metrics.h"
#include "src/util/check.h"

namespace trafficbench {
namespace {

using eval::ComputeMetrics;
using eval::MetricAccumulator;
using eval::MetricValues;

TEST(Metrics, HandComputedValues) {
  MetricValues m = ComputeMetrics({3.0f, 5.0f}, {1.0f, 2.0f});
  EXPECT_EQ(m.count, 2);
  EXPECT_DOUBLE_EQ(m.mae, 2.5);                       // (2 + 3) / 2
  EXPECT_NEAR(m.rmse, std::sqrt((4.0 + 9.0) / 2), 1e-9);
  EXPECT_NEAR(m.mape, 100.0 * (2.0 / 1 + 3.0 / 2) / 2, 1e-9);
}

TEST(Metrics, MasksZeroTargets) {
  MetricValues m = ComputeMetrics({10.0f, 99.0f}, {8.0f, 0.0f});
  EXPECT_EQ(m.count, 1);
  EXPECT_DOUBLE_EQ(m.mae, 2.0);
}

TEST(Metrics, MapeSkipsTinyTargets) {
  // Target 0.5 is below the MAPE floor of 1.0 but counts for MAE.
  MetricValues m = ComputeMetrics({1.0f, 2.0f}, {0.5f, 2.0f});
  EXPECT_EQ(m.count, 2);
  EXPECT_DOUBLE_EQ(m.mape, 0.0);  // only the exact-match target qualified
}

TEST(Metrics, MapeFloorBoundsRelativeError) {
  // A near-zero (but nonzero) target must not explode MAPE: it is excluded
  // by kMapeTargetFloor, so MAPE reflects only the well-scaled entry.
  MetricValues m = ComputeMetrics({5.0f, 55.0f}, {1e-4f, 50.0f});
  EXPECT_EQ(m.count, 2);          // both entered MAE/RMSE
  EXPECT_DOUBLE_EQ(m.mape, 10.0); // |55-50|/50 only
  EXPECT_GE(eval::kMapeTargetFloor, 1.0f);
}

TEST(Metrics, NonFinitePairsAreSkipped) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  MetricValues m = ComputeMetrics({nan, inf, 9.0f}, {10.0f, 10.0f, 10.0f});
  EXPECT_EQ(m.count, 1);
  EXPECT_DOUBLE_EQ(m.mae, 1.0);
  EXPECT_DOUBLE_EQ(m.mape, 10.0);
  // Non-finite targets are skipped too.
  MetricValues m2 = ComputeMetrics({1.0f, 2.0f}, {nan, 4.0f});
  EXPECT_EQ(m2.count, 1);
  EXPECT_DOUBLE_EQ(m2.mae, 2.0);
}

TEST(Metrics, IncludeMaskRestricts) {
  MetricAccumulator acc;
  const float pred[] = {2.0f, 4.0f, 6.0f};
  const float target[] = {1.0f, 1.0f, 1.0f};
  const uint8_t include[] = {1, 0, 1};
  acc.Add(pred, target, 3, include);
  MetricValues m = acc.Finalize();
  EXPECT_EQ(m.count, 2);
  EXPECT_DOUBLE_EQ(m.mae, 3.0);  // (1 + 5) / 2
}

TEST(Metrics, EmptyAccumulatorIsZero) {
  MetricValues m = MetricAccumulator().Finalize();
  EXPECT_EQ(m.count, 0);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
}

TEST(Metrics, RmseAtLeastMae) {
  MetricValues m =
      ComputeMetrics({1.0f, 5.0f, 2.0f, 8.0f}, {2.0f, 2.0f, 3.0f, 3.0f});
  EXPECT_GE(m.rmse, m.mae);
}

TEST(MaskedMaeLossOp, ValueAndGradientMasking) {
  Tensor pred = Tensor::FromVector(Shape({3}), {2.0f, 7.0f, 1.0f})
                    .set_requires_grad(true);
  Tensor target = Tensor::FromVector(Shape({3}), {1.0f, 0.0f, 3.0f});
  Tensor loss = eval::MaskedMaeLoss(pred, target);
  EXPECT_NEAR(loss.Item(), (1.0 + 2.0) / 2.0, 1e-6);
  loss.Backward();
  EXPECT_NEAR(pred.grad()[0], 0.5f, 1e-5);   // sign(+1) / 2
  EXPECT_FLOAT_EQ(pred.grad()[1], 0.0f);     // masked out
  EXPECT_NEAR(pred.grad()[2], -0.5f, 1e-5);  // sign(-2) / 2
}

TEST(MaskedMaeLossOp, ShapeMismatchThrows) {
  Tensor a = Tensor::Zeros(Shape({2})).set_requires_grad(true);
  Tensor b = Tensor::Zeros(Shape({3}));
  EXPECT_THROW(eval::MaskedMaeLoss(a, b), internal_check::CheckError);
}

TEST(Summarize, MeanAndSampleStd) {
  eval::MeanStd ms = eval::Summarize({1.0, 3.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_NEAR(ms.stddev, std::sqrt(2.0), 1e-9);
  EXPECT_DOUBLE_EQ(eval::Summarize({5.0}).stddev, 0.0);
  EXPECT_DOUBLE_EQ(eval::Summarize({}).mean, 0.0);
}

// ---- Difficult intervals -----------------------------------------------------

data::TrafficSeries StepSeries() {
  // One node, 64 steps: flat at 50, then a sharp drop to 20 at step 32.
  data::TrafficSeries series;
  series.kind = data::FeatureKind::kSpeed;
  series.num_nodes = 1;
  series.num_steps = 64;
  series.values.resize(64);
  for (int64_t s = 0; s < 64; ++s) {
    series.values[s] = s < 32 ? 50.0f : 20.0f;
  }
  series.time_of_day.assign(64, 0.5f);
  series.day_of_week.assign(64, 2);
  return series;
}

TEST(MovingStdOp, FlatIsZeroEdgeIsHigh) {
  data::TrafficSeries series = StepSeries();
  std::vector<float> stds = eval::MovingStd(series, 6);
  EXPECT_NEAR(stds[20], 0.0f, 1e-5);  // flat region
  EXPECT_NEAR(stds[60], 0.0f, 1e-5);  // flat again after the drop
  // Right at the transition the window mixes 50s and 20s.
  EXPECT_GT(stds[33], 10.0f);
}

TEST(MovingStdOp, SkipsMissingReadings) {
  data::TrafficSeries series = StepSeries();
  series.values[20] = 0.0f;  // missing inside a flat window
  std::vector<float> stds = eval::MovingStd(series, 6);
  EXPECT_NEAR(stds[22], 0.0f, 1e-5);
}

TEST(DifficultMaskOp, SelectsTransitionRegion) {
  data::TrafficSeries series = StepSeries();
  eval::DifficultIntervalOptions options;
  options.window_steps = 6;
  options.top_fraction = 0.15;
  std::vector<uint8_t> mask = eval::DifficultMask(series, options);
  // The steps right after the drop must be marked.
  EXPECT_EQ(mask[33], 1);
  EXPECT_EQ(mask[35], 1);
  // Deep flat regions must not be.
  EXPECT_EQ(mask[10], 0);
  EXPECT_EQ(mask[60], 0);
}

TEST(DifficultMaskOp, FractionApproximatesRequest) {
  Rng rng(21);
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, 10, &rng);
  data::SimulatorOptions options;
  options.num_days = 4;
  Rng sim_rng(5);
  data::TrafficSeries series = SimulateTraffic(
      network, data::FeatureKind::kSpeed, options, &sim_rng);
  for (double top : {0.1, 0.25, 0.5}) {
    eval::DifficultIntervalOptions dio;
    dio.top_fraction = top;
    std::vector<uint8_t> mask = eval::DifficultMask(series, dio);
    EXPECT_NEAR(eval::MaskFraction(mask), top, 0.03) << "top=" << top;
  }
}

TEST(DifficultMaskOp, PerNodeQuantiles) {
  // Two nodes: one calm, one volatile. Both should contribute ~25% of
  // steps because thresholds are per node.
  data::TrafficSeries series;
  series.kind = data::FeatureKind::kSpeed;
  series.num_nodes = 2;
  series.num_steps = 200;
  series.values.resize(400);
  Rng rng(3);
  for (int64_t s = 0; s < 200; ++s) {
    series.values[s * 2 + 0] =
        50.0f + static_cast<float>(rng.Normal(0.0, 0.2));
    series.values[s * 2 + 1] =
        50.0f + static_cast<float>(rng.Normal(0.0, 8.0));
  }
  series.time_of_day.assign(200, 0.0f);
  series.day_of_week.assign(200, 0);
  std::vector<uint8_t> mask = eval::DifficultMask(series, {});
  int64_t calm = 0, wild = 0;
  for (int64_t s = 0; s < 200; ++s) {
    calm += mask[s * 2];
    wild += mask[s * 2 + 1];
  }
  EXPECT_NEAR(calm, 50, 15);
  EXPECT_NEAR(wild, 50, 15);
}

}  // namespace
}  // namespace trafficbench
