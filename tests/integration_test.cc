// End-to-end integration tests across the full stack: simulate a network,
// train models, verify they beat the persistence baseline, and exercise
// the paper's difficult-interval pipeline on trained predictions.
// These are the slowest tests in the suite; they use a small dataset.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/trainer.h"
#include "src/models/ablation.h"
#include "src/models/traffic_model.h"

namespace trafficbench {
namespace {

const data::TrafficDataset& SmallDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "INTEG";
    profile.num_nodes = 12;
    profile.num_days = 6;
    profile.seed = 400;
    profile.incidents_per_day = 4.0;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

eval::HorizonReport TrainAndEvaluate(const std::string& name, int epochs,
                                     int64_t batches) {
  models::ModelContext context =
      models::MakeModelContext(SmallDataset(), 123);
  auto model = models::CreateModel(name, context);
  eval::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 8;
  config.max_batches_per_epoch = batches;
  config.learning_rate = 5e-3;
  TrainModel(model.get(), SmallDataset(), config);
  const data::DatasetSplits splits = SmallDataset().Splits();
  return eval::EvaluateModel(model.get(), SmallDataset(), splits.test_begin,
                       std::min(splits.test_begin + 120, splits.test_end));
}

TEST(Integration, TrainedModelBeatsPersistenceAtLongHorizon) {
  eval::HorizonReport persistence = TrainAndEvaluate("LastValue", 1, 1);
  eval::HorizonReport gwn = TrainAndEvaluate("Graph-WaveNet", 3, 30);
  // At the 60-minute horizon persistence decays badly; a trained model
  // with the daily-time feature must do better.
  EXPECT_LT(gwn.horizon60.mae, persistence.horizon60.mae)
      << "Graph-WaveNet " << gwn.horizon60.mae << " vs persistence "
      << persistence.horizon60.mae;
  // And the average must improve as well.
  EXPECT_LT(gwn.average.mae, persistence.average.mae);
}

TEST(Integration, LossDecreasesOverEpochs) {
  models::ModelContext context = models::MakeModelContext(SmallDataset(), 7);
  auto model = models::CreateModel("STG2Seq", context);
  eval::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  config.max_batches_per_epoch = 20;
  config.learning_rate = 5e-3;
  eval::TrainResult result = TrainModel(model.get(), SmallDataset(), config);
  ASSERT_EQ(result.epoch_losses.size(), 4u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(Integration, DifficultIntervalsHarderForTrainedModel) {
  models::ModelContext context = models::MakeModelContext(SmallDataset(), 9);
  auto model = models::CreateModel("Graph-WaveNet", context);
  eval::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.max_batches_per_epoch = 25;
  config.learning_rate = 5e-3;
  TrainModel(model.get(), SmallDataset(), config);

  const data::DatasetSplits splits = SmallDataset().Splits();
  const int64_t end = std::min(splits.test_begin + 120, splits.test_end);
  eval::HorizonReport all =
      eval::EvaluateModel(model.get(), SmallDataset(), splits.test_begin, end);
  std::vector<uint8_t> mask =
      eval::DifficultMask(SmallDataset().series(), {});
  eval::EvalOptions options;
  options.difficult_mask = &mask;
  eval::HorizonReport hard = EvaluateModel(model.get(), SmallDataset(),
                                           splits.test_begin, end, options);
  EXPECT_GT(hard.average.mae, all.average.mae)
      << "difficult subset must be harder (paper Fig. 2)";
  EXPECT_LT(hard.average.count, all.average.count);
}

TEST(Integration, DeterministicTrainingGivenSeeds) {
  auto run = [] {
    models::ModelContext context =
        models::MakeModelContext(SmallDataset(), 55);
    auto model = models::CreateModel("STGCN", context);
    eval::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 8;
    config.max_batches_per_epoch = 5;
    config.seed = 99;
    eval::TrainResult result =
        TrainModel(model.get(), SmallDataset(), config);
    return result.epoch_losses.front();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Integration, AblationBackboneVariantsAllTrain) {
  using models::SpatialKind;
  using models::TemporalKind;
  for (SpatialKind spatial :
       {SpatialKind::kNone, SpatialKind::kChebyshev, SpatialKind::kDiffusion,
        SpatialKind::kAdaptive}) {
    for (TemporalKind temporal :
         {TemporalKind::kGru, TemporalKind::kTcn, TemporalKind::kAttention}) {
      models::ModelContext context =
          models::MakeModelContext(SmallDataset(), 21);
      models::StBackbone model(context, spatial, temporal);
      eval::TrainConfig config;
      config.epochs = 1;
      config.batch_size = 8;
      config.max_batches_per_epoch = 3;
      eval::TrainResult result =
          TrainModel(&model, SmallDataset(), config);
      EXPECT_TRUE(std::isfinite(result.epoch_losses.front()))
          << model.name();
      data::Batch batch = SmallDataset().MakeBatch({0, 1});
      model.SetTraining(false);
      NoGradGuard guard;
      Tensor y = model.Forward(batch.x, Tensor());
      EXPECT_EQ(y.shape(), Shape({2, 12, 12})) << model.name();
    }
  }
}

TEST(Integration, HorizonDifficultyIncreasesWithLeadTime) {
  // Persistence error grows monotonically-ish with the horizon — a basic
  // property of the forecasting task the whole paper rests on.
  eval::HorizonReport report = TrainAndEvaluate("LastValue", 1, 1);
  EXPECT_LT(report.horizon15.mae, report.horizon30.mae);
  EXPECT_LT(report.horizon30.mae, report.horizon60.mae);
}

}  // namespace
}  // namespace trafficbench
