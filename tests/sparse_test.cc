// Property tests for the sparse graph-convolution engine: CSR conversion
// round-trips, SpMM-vs-dense GraphMix equality over random sparse supports
// (including empty rows, all-zero matrices and N=1), bit-identity across
// thread counts, gradcheck on SparseMatMul, and sparse-vs-dense forward
// parity of the DCRNN / Graph-WaveNet models.

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/execution_context.h"
#include "src/graph/road_network.h"
#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using exec::ExecOptions;
using exec::ExecutionContext;
using models::GraphSupport;
using models::GraphSupportThresholdGuard;
using sparse::CsrMatrix;
using sparse::CsrPtr;

/// Dense [rows, cols] matrix with ~`density` of entries nonzero.
Tensor RandomSparseDense(int64_t rows, int64_t cols, double density,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(rows * cols, 0.0f);
  for (float& x : data) {
    if (rng.Uniform(0.0, 1.0) < density) {
      x = static_cast<float>(rng.Normal());
    }
  }
  return Tensor::FromVector(Shape({rows, cols}), std::move(data));
}

/// Sparse and dense paths differ by float reassociation only; the bound
/// scales with the accumulation depth (columns of the support).
void ExpectClose(const Tensor& got, const Tensor& ref, int64_t depth) {
  ASSERT_EQ(got.shape().dims(), ref.shape().dims());
  const float tol = 1e-6f * static_cast<float>(depth + 8);
  const float* g = got.data();
  const float* r = ref.data();
  for (int64_t i = 0; i < ref.numel(); ++i) {
    const float scale = std::max(1.0f, std::fabs(r[i]));
    ASSERT_NEAR(g[i], r[i], tol * scale) << "at flat index " << i;
  }
}

// ---- CSR conversion ---------------------------------------------------------

TEST(SparseCsr, RoundTripPreservesDenseExactly) {
  for (double density : {0.02, 0.1, 0.5, 1.0}) {
    Tensor dense = RandomSparseDense(17, 23, density,
                                     100 + static_cast<uint64_t>(density * 100));
    CsrPtr csr = CsrMatrix::FromDense(dense);
    Tensor back = csr->ToDense();
    const float* a = dense.data();
    const float* b = back.data();
    for (int64_t i = 0; i < dense.numel(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "at flat index " << i;
    }
    EXPECT_EQ(csr->nnz(), graph::SupportNnz(dense));
    EXPECT_DOUBLE_EQ(csr->density(), graph::SupportDensity(dense));
  }
}

TEST(SparseCsr, ColumnsAscendWithinEveryRowBothDirections) {
  Tensor dense = RandomSparseDense(31, 19, 0.2, 7);
  CsrPtr csr = CsrMatrix::FromDense(dense);
  for (int64_t i = 0; i < csr->rows(); ++i) {
    for (int64_t k = csr->row_ptr()[i] + 1; k < csr->row_ptr()[i + 1]; ++k) {
      EXPECT_LT(csr->col_idx()[k - 1], csr->col_idx()[k]) << "row " << i;
    }
  }
  for (int64_t j = 0; j < csr->cols(); ++j) {
    for (int64_t k = csr->t_row_ptr()[j] + 1; k < csr->t_row_ptr()[j + 1];
         ++k) {
      EXPECT_LT(csr->t_col_idx()[k - 1], csr->t_col_idx()[k])
          << "transpose row " << j;
    }
  }
}

TEST(SparseCsr, TransposeArraysMatchTransposedDense) {
  Tensor dense = RandomSparseDense(13, 29, 0.15, 11);
  CsrPtr csr = CsrMatrix::FromDense(dense);
  CsrPtr transposed =
      CsrMatrix::FromDense(dense.Transpose(0, 1).Detach());
  ASSERT_EQ(csr->t_row_ptr(), transposed->row_ptr());
  ASSERT_EQ(csr->t_col_idx(), transposed->col_idx());
  ASSERT_EQ(csr->t_values(), transposed->values());
}

TEST(SparseCsr, HandlesEmptyRowsAndAllZeroMatrix) {
  // Rows 1 and 3 empty; column 0 empty.
  Tensor dense = Tensor::FromVector(
      Shape({4, 3}), {0.0f, 2.0f, 0.0f,  //
                      0.0f, 0.0f, 0.0f,  //
                      0.0f, 1.0f, 3.0f,  //
                      0.0f, 0.0f, 0.0f});
  CsrPtr csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr->nnz(), 3);
  EXPECT_EQ(csr->row_ptr()[1], csr->row_ptr()[2]);  // row 1 empty
  EXPECT_EQ(csr->t_row_ptr()[0], 0);
  EXPECT_EQ(csr->t_row_ptr()[1], 0);  // transpose row 0 (column 0) empty

  Tensor zeros = Tensor::Zeros(Shape({5, 5}));
  CsrPtr zcsr = CsrMatrix::FromDense(zeros);
  EXPECT_EQ(zcsr->nnz(), 0);
  EXPECT_DOUBLE_EQ(zcsr->density(), 0.0);
  Tensor x = RandomSparseDense(5, 4, 1.0, 21);
  Tensor y = SparseMatMul(zcsr, x);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y.data()[i], 0.0f);
}

TEST(SparseCsr, SingleElementMatrix) {
  Tensor one = Tensor::FromVector(Shape({1, 1}), {2.5f});
  CsrPtr csr = CsrMatrix::FromDense(one);
  EXPECT_EQ(csr->nnz(), 1);
  EXPECT_DOUBLE_EQ(csr->density(), 1.0);
  Tensor x = Tensor::FromVector(Shape({1, 3}), {1.0f, -2.0f, 4.0f});
  Tensor y = SparseMatMul(csr, x);
  EXPECT_EQ(y.data()[0], 2.5f);
  EXPECT_EQ(y.data()[1], -5.0f);
  EXPECT_EQ(y.data()[2], 10.0f);
}

TEST(SparseCsr, DensityThresholdGatesConversion) {
  Tensor sparse_m = RandomSparseDense(20, 20, 0.05, 31);
  Tensor dense_m = RandomSparseDense(20, 20, 0.9, 32);
  EXPECT_NE(CsrMatrix::FromDenseIfSparse(sparse_m), nullptr);
  EXPECT_EQ(CsrMatrix::FromDenseIfSparse(dense_m), nullptr);
  // The unconditional factory converts anything.
  EXPECT_NE(CsrMatrix::FromDense(dense_m), nullptr);
}

TEST(SparseCsr, FromCooMatchesFromDenseBitwise) {
  // Shuffled COO entries of a random sparse matrix must build the exact
  // arrays FromDense builds from the equivalent dense tensor.
  Tensor dense = RandomSparseDense(23, 17, 0.15, 41);
  std::vector<sparse::CooEntry> coo;
  for (int32_t r = 0; r < 23; ++r) {
    for (int32_t c = 0; c < 17; ++c) {
      const float v = dense.data()[r * 17 + c];
      if (v != 0.0f) coo.push_back({r, c, v});
    }
  }
  Rng rng(42);
  for (size_t i = coo.size(); i > 1; --i) {  // Fisher-Yates shuffle
    std::swap(coo[i - 1], coo[rng.UniformInt(i)]);
  }
  CsrPtr from_coo = CsrMatrix::FromCoo(23, 17, std::move(coo));
  CsrPtr from_dense = CsrMatrix::FromDense(dense);
  EXPECT_EQ(from_coo->row_ptr(), from_dense->row_ptr());
  EXPECT_EQ(from_coo->col_idx(), from_dense->col_idx());
  EXPECT_EQ(from_coo->values(), from_dense->values());
  EXPECT_EQ(from_coo->t_row_ptr(), from_dense->t_row_ptr());
  EXPECT_EQ(from_coo->t_col_idx(), from_dense->t_col_idx());
  EXPECT_EQ(from_coo->t_values(), from_dense->t_values());
}

TEST(SparseCsr, FromCooMergesDuplicatesAndDropsZeros) {
  std::vector<sparse::CooEntry> coo = {
      {1, 2, 0.5f},  {0, 0, 1.0f}, {1, 2, 0.25f},  // duplicate (1,2)
      {2, 1, 3.0f},  {2, 1, -3.0f},                // cancels to zero
      {0, 3, 0.0f},                                // explicit zero
  };
  CsrPtr csr = CsrMatrix::FromCoo(3, 4, std::move(coo));
  ASSERT_EQ(csr->nnz(), 2);
  EXPECT_EQ(csr->row_ptr(), (std::vector<int64_t>{0, 1, 2, 2}));
  EXPECT_EQ(csr->col_idx(), (std::vector<int32_t>{0, 2}));
  EXPECT_EQ(csr->values(), (std::vector<float>{1.0f, 0.75f}));
}

TEST(SparseCsr, MultiplyMatchesAscendingOrderReference) {
  Tensor a_dense = RandomSparseDense(12, 15, 0.2, 51);
  Tensor b_dense = RandomSparseDense(15, 9, 0.2, 52);
  CsrPtr a = CsrMatrix::FromDense(a_dense);
  CsrPtr b = CsrMatrix::FromDense(b_dense);
  CsrPtr product = CsrMatrix::Multiply(*a, *b);
  ASSERT_EQ(product->rows(), 12);
  ASSERT_EQ(product->cols(), 9);

  // Reference: per output row, accumulate a's nonzeros in ascending column
  // order into a dense scratch row — the same chain order Multiply pins.
  for (int64_t i = 0; i < 12; ++i) {
    std::vector<float> scratch(9, 0.0f);
    for (int64_t ka = a->row_ptr()[i]; ka < a->row_ptr()[i + 1]; ++ka) {
      const int32_t k = a->col_idx()[ka];
      const float av = a->values()[ka];
      for (int64_t kb = b->row_ptr()[k]; kb < b->row_ptr()[k + 1]; ++kb) {
        scratch[b->col_idx()[kb]] += av * b->values()[kb];
      }
    }
    for (int64_t kp = product->row_ptr()[i]; kp < product->row_ptr()[i + 1];
         ++kp) {
      const int32_t j = product->col_idx()[kp];
      EXPECT_EQ(product->values()[kp], scratch[j]) << i << "," << j;
      scratch[j] = 0.0f;  // consumed
    }
    // Anything left nonzero would be an entry Multiply missed.
    for (int64_t j = 0; j < 9; ++j) {
      EXPECT_EQ(scratch[j], 0.0f) << "missing entry " << i << "," << j;
    }
  }
}

// ---- SpMM vs dense GraphMix -------------------------------------------------

TEST(SpmmProperty, MatchesDenseGraphMixOverRandomSupports) {
  const int64_t sizes[] = {1, 2, 5, 16, 17, 33};
  const double densities[] = {0.05, 0.3, 1.0};
  for (int64_t n : sizes) {
    for (double density : densities) {
      Tensor support = RandomSparseDense(
          n, n, density, 500 + static_cast<uint64_t>(n * 7 + density * 10));
      CsrPtr csr = CsrMatrix::FromDense(support);
      // Batched features [2, n, 6] exercise the shared-support batching.
      Rng rng(600 + static_cast<uint64_t>(n));
      Tensor features = Tensor::Rand(Shape({2, n, 6}), &rng, -1.5f, 1.5f);
      Tensor got = SparseMatMul(csr, features);
      Tensor ref = models::GraphMix(support, features);
      ExpectClose(got, ref, n);
    }
  }
}

TEST(SpmmProperty, BackwardMatchesDenseGradient) {
  Tensor support = RandomSparseDense(9, 11, 0.25, 41);
  CsrPtr csr = CsrMatrix::FromDense(support);
  Rng rng(42);
  Tensor x_sparse =
      Tensor::Rand(Shape({3, 11, 5}), &rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor x_dense = Tensor::FromVector(x_sparse.shape(),
                                      std::vector<float>(
                                          x_sparse.data(),
                                          x_sparse.data() + x_sparse.numel()))
                       .set_requires_grad(true);
  SparseMatMul(csr, x_sparse).SumAll().Backward();
  models::GraphMix(support, x_dense).SumAll().Backward();
  Tensor gs = Tensor::FromVector(x_sparse.shape(), x_sparse.grad());
  Tensor gd = Tensor::FromVector(x_dense.shape(), x_dense.grad());
  ExpectClose(gs, gd, 9);
}

TEST(SpmmProperty, ForwardAndBackwardBitIdenticalAcrossThreadCounts) {
  Tensor support = RandomSparseDense(37, 37, 0.1, 51);
  CsrPtr csr = CsrMatrix::FromDense(support);
  std::vector<float> baseline_y;
  std::vector<float> baseline_g;
  for (int threads : {1, 2, 4}) {
    ExecutionContext context(ExecOptions{.threads = threads});
    ExecutionContext::Bind bind(&context);
    Rng rng(52);
    Tensor x = Tensor::Rand(Shape({4, 37, 8}), &rng, -1.0f, 1.0f)
                   .set_requires_grad(true);
    Tensor y = SparseMatMul(csr, x);
    y.SumAll().Backward();
    std::vector<float> yv(y.data(), y.data() + y.numel());
    std::vector<float> gv = x.grad();
    if (threads == 1) {
      baseline_y = std::move(yv);
      baseline_g = std::move(gv);
    } else {
      EXPECT_EQ(baseline_y, yv) << "forward differs at threads=" << threads;
      EXPECT_EQ(baseline_g, gv) << "backward differs at threads=" << threads;
    }
  }
}

TEST(SpmmProperty, GradcheckSparseMatMul) {
  Tensor support = RandomSparseDense(6, 7, 0.3, 61);
  CsrPtr csr = CsrMatrix::FromDense(support);
  Rng rng(62);
  std::vector<Tensor> inputs = {
      Tensor::Rand(Shape({2, 7, 3}), &rng, -1.5f, 1.5f)
          .set_requires_grad(true)};
  GradCheckResult result = CheckGradients(
      [&csr](const std::vector<Tensor>& in) {
        return SparseMatMul(csr, in[0]).SumAll();
      },
      inputs);
  EXPECT_TRUE(result.passed) << result.detail << " (max abs err "
                             << result.max_abs_error << ")";
}

TEST(SpmmProperty, ProfilerCountsSparseNotDenseFlops) {
  ExecutionContext context(ExecOptions{.threads = 1, .profile = true});
  ExecutionContext::Bind bind(&context);
  Tensor support = RandomSparseDense(50, 50, 0.1, 71);
  CsrPtr csr = CsrMatrix::FromDense(support);
  Rng rng(72);
  Tensor x = Tensor::Rand(Shape({3, 50, 4}), &rng, -1.0f, 1.0f)
                 .set_requires_grad(true);
  Tensor y = SparseMatMul(csr, x);
  y.SumAll().Backward();
  const exec::OpStats fwd = context.profiler().stats(exec::OpKind::kSpMM);
  const exec::OpStats bwd =
      context.profiler().stats(exec::OpKind::kSpMMBackward);
  EXPECT_EQ(fwd.calls, 1);
  EXPECT_EQ(bwd.calls, 1);
  const double expected = 2.0 * static_cast<double>(csr->nnz()) * 4 * 3;
  EXPECT_DOUBLE_EQ(fwd.flops, expected);
  EXPECT_DOUBLE_EQ(bwd.flops, expected);
  EXPECT_LT(expected, 2.0 * 50 * 50 * 4 * 3);  // strictly below dense cost
}

// ---- GraphSupport dispatch --------------------------------------------------

TEST(SparseGraphSupport, DispatchesByDensityThreshold) {
  Tensor sparse_m = RandomSparseDense(20, 20, 0.05, 81);
  Tensor dense_m = RandomSparseDense(20, 20, 0.9, 82);
  GraphSupport s(sparse_m);
  GraphSupport d(dense_m);
  EXPECT_TRUE(s.is_sparse());
  EXPECT_FALSE(d.is_sparse());
  EXPECT_EQ(s.nnz(), graph::SupportNnz(sparse_m));
  EXPECT_NEAR(d.density(), graph::SupportDensity(dense_m), 1e-12);
  // Both paths agree regardless of dispatch.
  Rng rng(83);
  Tensor x = Tensor::Rand(Shape({2, 20, 5}), &rng, -1.0f, 1.0f);
  ExpectClose(s.Apply(x), models::GraphMix(sparse_m, x), 20);
  ExpectClose(d.Apply(x), models::GraphMix(dense_m, x), 20);
}

TEST(SparseGraphSupport, ThresholdGuardForcesEitherPath) {
  Tensor m = RandomSparseDense(12, 12, 0.4, 91);
  {
    GraphSupportThresholdGuard force_dense(0.0);
    EXPECT_FALSE(GraphSupport(m).is_sparse());
  }
  {
    GraphSupportThresholdGuard force_sparse(1.0);
    EXPECT_TRUE(GraphSupport(m).is_sparse());
  }
  EXPECT_DOUBLE_EQ(models::GraphSupportDensityThreshold(),
                   sparse::kDefaultDensityThreshold);
}

// ---- Model-level parity -----------------------------------------------------

/// A genuinely sparse adjacency (binary corridor graph) so DCRNN's and
/// Graph-WaveNet's diffusion supports convert to CSR — the synthetic
/// all-pairs Gaussian adjacency is too dense to exercise the sparse path.
models::ModelContext SparseModelContext() {
  models::ModelContext context;
  context.num_nodes = 16;
  context.seed = 5;
  Rng rng(2021);
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, context.num_nodes, &rng);
  context.adjacency = network.BinaryAdjacency();
  return context;
}

void ExpectModelParity(const std::string& name) {
  models::ModelContext context = SparseModelContext();
  EXPECT_LE(graph::SupportDensity(context.adjacency),
            sparse::kDefaultDensityThreshold)
      << "test adjacency must be sparse for the parity to be meaningful";

  std::unique_ptr<models::TrafficModel> sparse_model;
  {
    GraphSupportThresholdGuard force_sparse(1.0);
    sparse_model = models::CreateModel(name, context);
  }
  std::unique_ptr<models::TrafficModel> dense_model;
  {
    GraphSupportThresholdGuard force_dense(0.0);
    dense_model = models::CreateModel(name, context);
  }
  sparse_model->SetTraining(false);
  dense_model->SetTraining(false);

  Rng rng(7);
  Tensor x = Tensor::Rand(Shape({2, 12, context.num_nodes, 2}), &rng, 0.0f,
                          1.0f);
  NoGradGuard no_grad;
  Tensor ys = sparse_model->Forward(x, Tensor());
  Tensor yd = dense_model->Forward(x, Tensor());
  ExpectClose(ys, yd, context.num_nodes);
}

TEST(SparseModelParity, DcrnnSparseForwardMatchesDense) {
  ExpectModelParity("DCRNN");
}

TEST(SparseModelParity, GraphWaveNetSparseForwardMatchesDense) {
  ExpectModelParity("Graph-WaveNet");
}

TEST(SparseModelParity, DcrnnSparseForwardBitIdenticalAcrossThreadCounts) {
  models::ModelContext context = SparseModelContext();
  GraphSupportThresholdGuard force_sparse(1.0);
  std::unique_ptr<models::TrafficModel> model =
      models::CreateModel("DCRNN", context);
  model->SetTraining(false);
  Rng rng(9);
  Tensor x = Tensor::Rand(Shape({2, 12, context.num_nodes, 2}), &rng, 0.0f,
                          1.0f);
  std::vector<float> baseline;
  for (int threads : {1, 2, 4}) {
    ExecutionContext exec_context(ExecOptions{.threads = threads});
    ExecutionContext::Bind bind(&exec_context);
    NoGradGuard no_grad;
    Tensor y = model->Forward(x, Tensor());
    std::vector<float> yv(y.data(), y.data() + y.numel());
    if (threads == 1) {
      baseline = std::move(yv);
    } else {
      EXPECT_EQ(baseline, yv) << "forward differs at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace trafficbench
