// Forward-value tests for the tensor op library.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/tensor.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using internal_check::CheckError;

TEST(Shape, BasicProperties) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
  EXPECT_EQ(s.Strides(), (std::vector<int64_t>{12, 4, 1}));
}

TEST(Shape, ScalarShape) {
  Shape s({});
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, BroadcastRules) {
  EXPECT_EQ(Shape::Broadcast(Shape({2, 1, 4}), Shape({3, 1})),
            Shape({2, 3, 4}));
  EXPECT_EQ(Shape::Broadcast(Shape({}), Shape({5})), Shape({5}));
  EXPECT_TRUE(Shape::BroadcastsTo(Shape({1, 4}), Shape({3, 4})));
  EXPECT_FALSE(Shape::BroadcastsTo(Shape({2, 4}), Shape({3, 4})));
  EXPECT_THROW(Shape::Broadcast(Shape({2}), Shape({3})), CheckError);
}

TEST(TensorFactory, FullAndFromVector) {
  Tensor t = Tensor::Full(Shape({2, 2}), 7.0f);
  EXPECT_FLOAT_EQ(t.At({1, 1}), 7.0f);
  EXPECT_THROW(Tensor::FromVector(Shape({3}), {1.0f, 2.0f}), CheckError);
}

TEST(TensorFactory, RandnStatistics) {
  Rng rng(42);
  Tensor t = Tensor::Randn(Shape({10000}), &rng, 2.0f);
  double sum = 0, sq = 0;
  for (float v : t.ToVector()) {
    sum += v;
    sq += v * v;
  }
  const double mean = sum / t.numel();
  const double var = sq / t.numel() - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorFactory, Arange) {
  Tensor t = Tensor::Arange(4);
  EXPECT_EQ(t.ToVector(), (std::vector<float>{0, 1, 2, 3}));
}

TEST(ElementwiseOps, BroadcastAdd) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape({3}), {10, 20, 30});
  Tensor c = a + b;
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(c.At({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(c.At({1, 2}), 36.0f);
}

TEST(ElementwiseOps, BroadcastColumnTimesRow) {
  Tensor col = Tensor::FromVector(Shape({2, 1}), {2, 3});
  Tensor row = Tensor::FromVector(Shape({1, 3}), {1, 10, 100});
  Tensor c = col * row;
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(c.At({0, 1}), 20.0f);
  EXPECT_FLOAT_EQ(c.At({1, 2}), 300.0f);
}

TEST(ElementwiseOps, ScalarOverloads) {
  Tensor a = Tensor::FromVector(Shape({2}), {2, 4});
  EXPECT_FLOAT_EQ((a + 1.0f).At({0}), 3.0f);
  EXPECT_FLOAT_EQ((1.0f - a).At({1}), -3.0f);
  EXPECT_FLOAT_EQ((a * 3.0f).At({1}), 12.0f);
  EXPECT_FLOAT_EQ((8.0f / a).At({0}), 4.0f);
  EXPECT_FLOAT_EQ((-a).At({0}), -2.0f);
}

TEST(ElementwiseOps, UnaryValues) {
  Tensor x = Tensor::FromVector(Shape({3}), {-1.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(x.Relu().At({0}), 0.0f);
  EXPECT_FLOAT_EQ(x.Relu().At({2}), 2.0f);
  EXPECT_FLOAT_EQ(x.Abs().At({0}), 1.0f);
  EXPECT_NEAR(x.Sigmoid().At({1}), 0.5f, 1e-6);
  EXPECT_NEAR(x.Tanh().At({2}), std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(x.Exp().At({2}), std::exp(2.0f), 1e-4);
  EXPECT_NEAR(x.LeakyRelu(0.1f).At({0}), -0.1f, 1e-6);
}

TEST(ElementwiseOps, MaximumMinimum) {
  Tensor a = Tensor::FromVector(Shape({3}), {1, 5, 3});
  Tensor b = Tensor::FromVector(Shape({3}), {2, 4, 3});
  EXPECT_EQ(Maximum(a, b).ToVector(), (std::vector<float>{2, 5, 3}));
  EXPECT_EQ(Minimum(a, b).ToVector(), (std::vector<float>{1, 4, 3}));
}

TEST(MatMulOp, Rectangular) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(c.At({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.At({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.At({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.At({1, 1}), 154.0f);
}

TEST(MatMulOp, BatchedBroadcast) {
  // [2, 2, 2] x [2, 2] broadcasts the right operand over the batch.
  Tensor a = Tensor::FromVector(Shape({2, 2, 2}), {1, 0, 0, 1, 2, 0, 0, 2});
  Tensor b = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2, 2}));
  EXPECT_FLOAT_EQ(c.At({0, 0, 0}), 1.0f);  // identity batch
  EXPECT_FLOAT_EQ(c.At({1, 0, 1}), 4.0f);  // 2x scaled batch
}

TEST(MatMulOp, InnerDimMismatchThrows) {
  Tensor a = Tensor::Zeros(Shape({2, 3}));
  Tensor b = Tensor::Zeros(Shape({2, 2}));
  EXPECT_THROW(MatMul(a, b), CheckError);
}

TEST(ShapeOps, ReshapeRoundTrip) {
  Tensor a = Tensor::Arange(6).Reshape(Shape({2, 3}));
  EXPECT_FLOAT_EQ(a.At({1, 0}), 3.0f);
  EXPECT_THROW(a.Reshape(Shape({4})), CheckError);
}

TEST(ShapeOps, TransposeValues) {
  Tensor a = Tensor::Arange(6).Reshape(Shape({2, 3}));
  Tensor t = a.Transpose(0, 1);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(t.At({0, 1}), 3.0f);
  EXPECT_FLOAT_EQ(t.At({2, 0}), 2.0f);
}

TEST(ShapeOps, PermuteValues) {
  Tensor a = Tensor::Arange(24).Reshape(Shape({2, 3, 4}));
  Tensor p = a.Permute({2, 0, 1});
  EXPECT_EQ(p.shape(), Shape({4, 2, 3}));
  EXPECT_FLOAT_EQ(p.At({1, 0, 2}), a.At({0, 2, 1}));
}

TEST(ShapeOps, SliceMiddleAxis) {
  Tensor a = Tensor::Arange(24).Reshape(Shape({2, 3, 4}));
  Tensor s = a.Slice(1, 1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 2, 4}));
  EXPECT_FLOAT_EQ(s.At({0, 0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(s.At({1, 1, 3}), 23.0f);
}

TEST(ShapeOps, UnsqueezeSqueeze) {
  Tensor a = Tensor::Arange(6).Reshape(Shape({2, 3}));
  Tensor u = a.Unsqueeze(1);
  EXPECT_EQ(u.shape(), Shape({2, 1, 3}));
  EXPECT_EQ(u.Squeeze(1).shape(), Shape({2, 3}));
  EXPECT_EQ(a.Unsqueeze(-1).shape(), Shape({2, 3, 1}));
  EXPECT_THROW(a.Squeeze(0), CheckError);
}

TEST(ShapeOps, BroadcastToValues) {
  Tensor a = Tensor::FromVector(Shape({1, 2}), {5, 6});
  Tensor b = a.BroadcastTo(Shape({3, 2}));
  EXPECT_FLOAT_EQ(b.At({2, 0}), 5.0f);
  EXPECT_FLOAT_EQ(b.At({1, 1}), 6.0f);
}

TEST(Reductions, SumAxes) {
  Tensor a = Tensor::Arange(6).Reshape(Shape({2, 3}));
  Tensor s0 = a.Sum({0});
  EXPECT_EQ(s0.shape(), Shape({3}));
  EXPECT_EQ(s0.ToVector(), (std::vector<float>{3, 5, 7}));
  Tensor s1 = a.Sum({1}, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), Shape({2, 1}));
  EXPECT_EQ(s1.ToVector(), (std::vector<float>{3, 12}));
  EXPECT_FLOAT_EQ(a.SumAll().Item(), 15.0f);
  EXPECT_FLOAT_EQ(a.MeanAll().Item(), 2.5f);
}

TEST(Reductions, MeanWithNegativeAxis) {
  Tensor a = Tensor::Arange(8).Reshape(Shape({2, 4}));
  Tensor m = a.Mean({-1});
  EXPECT_EQ(m.shape(), Shape({2}));
  EXPECT_FLOAT_EQ(m.At({0}), 1.5f);
  EXPECT_FLOAT_EQ(m.At({1}), 5.5f);
}

TEST(SoftmaxOp, RowsSumToOne) {
  Rng rng(7);
  Tensor a = Tensor::Randn(Shape({4, 5}), &rng);
  Tensor y = a.Softmax(-1);
  for (int64_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 5; ++j) sum += y.At({i, j});
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(SoftmaxOp, StableWithLargeLogits) {
  Tensor a = Tensor::FromVector(Shape({2}), {1000.0f, 1001.0f});
  Tensor y = a.Softmax(0);
  EXPECT_NEAR(y.At({1}), 1.0f / (1.0f + std::exp(-1.0f)), 1e-5);
  EXPECT_FALSE(std::isnan(y.At({0})));
}

TEST(SoftmaxOp, InnerAxis) {
  Tensor a = Tensor::Zeros(Shape({2, 3, 4}));
  Tensor y = a.Softmax(1);
  EXPECT_NEAR(y.At({0, 0, 0}), 1.0f / 3.0f, 1e-6);
}

TEST(StructuralOps, ConcatAxis0And1) {
  Tensor a = Tensor::Arange(4).Reshape(Shape({2, 2}));
  Tensor b = Tensor::Full(Shape({2, 2}), 9.0f);
  Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), Shape({4, 2}));
  EXPECT_FLOAT_EQ(c0.At({3, 1}), 9.0f);
  Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), Shape({2, 4}));
  EXPECT_FLOAT_EQ(c1.At({0, 3}), 9.0f);
  EXPECT_FLOAT_EQ(c1.At({1, 0}), 2.0f);
}

TEST(StructuralOps, StackCreatesNewAxis) {
  Tensor a = Tensor::Arange(3);
  Tensor b = Tensor::Full(Shape({3}), 5.0f);
  Tensor s = Stack({a, b}, 0);
  EXPECT_EQ(s.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(s.At({1, 2}), 5.0f);
}

TEST(StructuralOps, PadAddsZeros) {
  Tensor a = Tensor::FromVector(Shape({1, 3}), {1, 2, 3});
  Tensor p = Pad(a, 1, 2, 1);
  EXPECT_EQ(p.shape(), Shape({1, 6}));
  EXPECT_EQ(p.ToVector(), (std::vector<float>{0, 0, 1, 2, 3, 0}));
}

TEST(StructuralOps, IndexSelectGather) {
  Tensor a = Tensor::Arange(6).Reshape(Shape({3, 2}));
  Tensor g = IndexSelect(a, 0, {2, 0, 2});
  EXPECT_EQ(g.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(g.At({0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(g.At({1, 1}), 1.0f);
  EXPECT_FLOAT_EQ(g.At({2, 0}), 4.0f);
  EXPECT_THROW(IndexSelect(a, 0, {3}), CheckError);
}

TEST(Conv2dOp, IdentityKernel) {
  Tensor x = Tensor::Arange(8).Reshape(Shape({1, 1, 2, 4}));
  Tensor w = Tensor::Ones(Shape({1, 1, 1, 1}));
  Tensor y = Conv2d(x, w, Tensor());
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 4}));
  EXPECT_EQ(y.ToVector(), x.ToVector());
}

TEST(Conv2dOp, TemporalKernelShrinksWidth) {
  // Kernel (1, 2): moving sum along the last (time) axis.
  Tensor x = Tensor::FromVector(Shape({1, 1, 1, 4}), {1, 2, 3, 4});
  Tensor w = Tensor::Ones(Shape({1, 1, 1, 2}));
  Tensor y = Conv2d(x, w, Tensor());
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 3}));
  EXPECT_EQ(y.ToVector(), (std::vector<float>{3, 5, 7}));
}

TEST(Conv2dOp, DilationSkipsElements) {
  Tensor x = Tensor::FromVector(Shape({1, 1, 1, 5}), {1, 2, 3, 4, 5});
  Tensor w = Tensor::Ones(Shape({1, 1, 1, 2}));
  Tensor y = Conv2d(x, w, Tensor(), 1, 1, 0, 0, 1, 2);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 3}));
  EXPECT_EQ(y.ToVector(), (std::vector<float>{4, 6, 8}));
}

TEST(Conv2dOp, BiasAndMultiChannel) {
  Tensor x = Tensor::Ones(Shape({1, 2, 1, 3}));
  Tensor w = Tensor::Ones(Shape({3, 2, 1, 1}));
  Tensor b = Tensor::FromVector(Shape({3}), {0.0f, 10.0f, 20.0f});
  Tensor y = Conv2d(x, w, b);
  EXPECT_EQ(y.shape(), Shape({1, 3, 1, 3}));
  EXPECT_FLOAT_EQ(y.At({0, 0, 0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(y.At({0, 1, 0, 1}), 12.0f);
  EXPECT_FLOAT_EQ(y.At({0, 2, 0, 2}), 22.0f);
}

TEST(Conv2dOp, PaddingGrowsOutput) {
  Tensor x = Tensor::Ones(Shape({1, 1, 1, 3}));
  Tensor w = Tensor::Ones(Shape({1, 1, 1, 3}));
  Tensor y = Conv2d(x, w, Tensor(), 1, 1, 0, 1);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 3}));
  EXPECT_EQ(y.ToVector(), (std::vector<float>{2, 3, 2}));
}

TEST(DetachOp, BreaksGraph) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, 2}).set_requires_grad(true);
  Tensor b = (a * 2.0f).Detach();
  EXPECT_FALSE(b.requires_grad());
  Tensor c = b * 3.0f;
  EXPECT_FALSE(c.requires_grad());
}

TEST(NoGrad, SuppressesGraphRecording) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, 2}).set_requires_grad(true);
  {
    NoGradGuard guard;
    Tensor b = a * 2.0f;
    EXPECT_FALSE(b.requires_grad());
  }
  Tensor c = a * 2.0f;
  EXPECT_TRUE(c.requires_grad());
}

}  // namespace
}  // namespace trafficbench
