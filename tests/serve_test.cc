// Inference-serving suite: registry loading (warm instances, checkpoint
// integrity), bounded-queue backpressure, dynamic micro-batching, the
// batched-equals-batch-of-1 determinism contract at any worker/thread
// count, the serve_slow_worker fault site's visibility in the latency SLO
// metrics, and the latency recorder's percentile math.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"
#include "src/nn/serialize.h"
#include "src/serve/batcher.h"
#include "src/serve/latency_recorder.h"
#include "src/serve/model_registry.h"
#include "src/serve/server.h"
#include "src/util/check.h"
#include "src/util/fault.h"

namespace trafficbench {
namespace {

class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    Result<FaultInjector> parsed = FaultInjector::Parse(spec);
    TB_CHECK(parsed.ok()) << parsed.status().ToString();
    FaultInjector::SetGlobal(std::move(parsed).value());
  }
  ~ScopedFault() { FaultInjector::SetGlobal(FaultInjector()); }
};

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

const data::TrafficDataset& TinyDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "SERVE";
    profile.num_nodes = 8;
    profile.num_days = 4;
    profile.seed = 414;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

constexpr char kDataset[] = "SERVE";

serve::ModelSpec SpecFor(const std::string& model_name) {
  serve::ModelSpec spec;
  spec.model_name = model_name;
  spec.dataset_name = kDataset;
  spec.dataset = &TinyDataset();
  spec.seed = 2021;
  return spec;
}

/// One test window as [T_in, N, 2] (sample index into the full dataset).
Tensor Window(int64_t sample) {
  Tensor x = TinyDataset().MakeBatch({sample}).x;
  return Tensor::FromVector({x.dim(1), x.dim(2), x.dim(3)}, x.ToVector());
}

/// Raw-scale batch-of-1 reference prediction straight off the registry
/// entry (the value every batched serve of the same window must match
/// bit for bit).
std::vector<float> DirectPrediction(const serve::LoadedModel& model,
                                    int64_t sample) {
  return model.Predict(TinyDataset().MakeBatch({sample}).x).ToVector();
}

bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ---- ModelRegistry ----------------------------------------------------------

TEST(ServeRegistry, LoadsWarmInstanceAndFindsByKey) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  EXPECT_EQ(registry.size(), 1u);
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->model_name(), "STGCN");
  EXPECT_EQ(entry->num_nodes(), TinyDataset().num_nodes());
  EXPECT_GT(entry->parameter_count(), 0);
  EXPECT_EQ(registry.Find("STGCN", "other-dataset"), nullptr);
  EXPECT_EQ(registry.Find("DCRNN", kDataset), nullptr);

  Tensor y = entry->Predict(TinyDataset().MakeBatch({0, 1}).x);
  EXPECT_EQ(y.shape(), Shape({2, TinyDataset().output_len(),
                              TinyDataset().num_nodes()}));
}

TEST(ServeRegistry, UnknownModelIsCleanNotFound) {
  serve::ModelRegistry registry;
  Status status = registry.Load(SpecFor("NoSuchModel"));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ServeRegistry, NullDatasetIsInvalidArgument) {
  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("STGCN");
  spec.dataset = nullptr;
  EXPECT_EQ(registry.Load(spec).code(), StatusCode::kInvalidArgument);
}

TEST(ServeRegistry, MissingCheckpointIsCleanNotFound) {
  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("STGCN");
  spec.checkpoint_path = TempPath("tb_serve_no_such_ckpt.bin");
  std::filesystem::remove(spec.checkpoint_path);
  Status status = registry.Load(spec);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find(spec.checkpoint_path), std::string::npos);
  EXPECT_EQ(registry.Find("STGCN", kDataset), nullptr);
}

TEST(ServeRegistry, V1CheckpointLoadsBitIdentical) {
  // Save a v1 (TBCKPT1) parameter checkpoint from a differently-seeded
  // source model; the registry must serve exactly those weights.
  auto source = models::CreateModel(
      "STGCN", models::MakeModelContext(TinyDataset(), /*seed=*/77));
  const std::string path = TempPath("tb_serve_ckpt_v1.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(*source, path));

  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("STGCN");
  spec.seed = 5;  // different init; the checkpoint must win
  spec.checkpoint_path = path;
  TB_CHECK_OK(registry.Load(spec));

  source->SetTraining(false);
  NoGradGuard no_grad;
  Tensor expected = source->Forward(TinyDataset().MakeBatch({3}).x, Tensor());
  std::vector<float> raw = expected.ToVector();
  for (float& v : raw) v = TinyDataset().scaler().Denormalize(v);
  EXPECT_TRUE(BitEqual(
      raw, DirectPrediction(*registry.Find("STGCN", kDataset), 3)));
}

TEST(ServeRegistry, Tbckpt2CheckpointLoads) {
  auto source = models::CreateModel(
      "Graph-WaveNet", models::MakeModelContext(TinyDataset(), 77));
  nn::TrainState state;
  state.epoch = 1;
  state.learning_rate = 1e-3;
  const std::string path = TempPath("tb_serve_ckpt_v2.bin");
  TB_CHECK_OK(nn::SaveTrainCheckpoint(*source, state, path));

  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("Graph-WaveNet");
  spec.seed = 5;
  spec.checkpoint_path = path;
  TB_CHECK_OK(registry.Load(spec));

  source->SetTraining(false);
  NoGradGuard no_grad;
  Tensor expected = source->Forward(TinyDataset().MakeBatch({0}).x, Tensor());
  std::vector<float> raw = expected.ToVector();
  for (float& v : raw) v = TinyDataset().scaler().Denormalize(v);
  EXPECT_TRUE(BitEqual(
      raw, DirectPrediction(*registry.Find("Graph-WaveNet", kDataset), 0)));
}

TEST(ServeRegistry, CorruptCheckpointRejectedViaCrc) {
  auto source = models::CreateModel(
      "STGCN", models::MakeModelContext(TinyDataset(), 77));
  const std::string path = TempPath("tb_serve_ckpt_corrupt.bin");
  TB_CHECK_OK(nn::SaveTrainCheckpoint(*source, nn::TrainState{}, path));
  // Flip one payload byte: the TBCKPT2 CRC32 footer must reject the load.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    ASSERT_GT(size, 64);
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }
  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("STGCN");
  spec.checkpoint_path = path;
  Status status = registry.Load(spec);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(registry.Find("STGCN", kDataset), nullptr);
}

TEST(ServeRegistry, TruncatedCheckpointRejected) {
  auto source = models::CreateModel(
      "STGCN", models::MakeModelContext(TinyDataset(), 77));
  const std::string path = TempPath("tb_serve_ckpt_trunc.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(*source, path));
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("STGCN");
  spec.checkpoint_path = path;
  EXPECT_FALSE(registry.Load(spec).ok());
}

TEST(ServeRegistry, WrongArchitectureCheckpointRejected) {
  auto source = models::CreateModel(
      "DCRNN", models::MakeModelContext(TinyDataset(), 77));
  const std::string path = TempPath("tb_serve_ckpt_wrong_arch.bin");
  TB_CHECK_OK(nn::SaveCheckpoint(*source, path));
  serve::ModelRegistry registry;
  serve::ModelSpec spec = SpecFor("STGCN");  // mismatched parameter set
  spec.checkpoint_path = path;
  EXPECT_FALSE(registry.Load(spec).ok());
}

// ---- RequestQueue + Batcher -------------------------------------------------

serve::PendingRequest MakePending(serve::LoadedModelPtr model,
                                  int64_t sample) {
  serve::PendingRequest request;
  request.model = std::move(model);
  request.window = Window(sample);
  request.enqueue_time = std::chrono::steady_clock::now();
  return request;
}

TEST(ServeQueue, BoundedQueueShedsWithResourceExhausted) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::LoadedModelPtr model = registry.Find("STGCN", kDataset);

  serve::RequestQueue queue(/*capacity=*/2);
  EXPECT_TRUE(queue.Push(MakePending(model, 0)).ok());
  EXPECT_TRUE(queue.Push(MakePending(model, 1)).ok());
  Status third = queue.Push(MakePending(model, 2));
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2);
}

TEST(ServeQueue, ClosedQueueRejectsPushes) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::RequestQueue queue(4);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.Push(MakePending(registry.Find("STGCN", kDataset), 0))
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(ServeBatcher, CoalescesUpToMaxBatchThenDrains) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::LoadedModelPtr model = registry.Find("STGCN", kDataset);

  serve::RequestQueue queue(16);
  for (int64_t i = 0; i < 5; ++i) {
    TB_CHECK_OK(queue.Push(MakePending(model, i)));
  }
  queue.Close();  // drain mode: no fill waiting
  serve::Batcher batcher(&queue, {.max_batch_size = 4});

  std::optional<serve::MicroBatch> first = batcher.NextBatch();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->requests.size(), 4u);
  std::optional<serve::MicroBatch> second = batcher.NextBatch();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->requests.size(), 1u);
  EXPECT_FALSE(batcher.NextBatch().has_value());  // closed and drained
}

TEST(ServeBatcher, KeepsModelLanesApart) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  TB_CHECK_OK(registry.Load(SpecFor("DCRNN")));
  serve::LoadedModelPtr stgcn = registry.Find("STGCN", kDataset);
  serve::LoadedModelPtr dcrnn = registry.Find("DCRNN", kDataset);

  serve::RequestQueue queue(16);
  // Interleaved arrivals; each micro-batch must stay single-model.
  TB_CHECK_OK(queue.Push(MakePending(stgcn, 0)));
  TB_CHECK_OK(queue.Push(MakePending(dcrnn, 1)));
  TB_CHECK_OK(queue.Push(MakePending(stgcn, 2)));
  TB_CHECK_OK(queue.Push(MakePending(dcrnn, 3)));
  queue.Close();
  serve::Batcher batcher(&queue, {.max_batch_size = 8});

  int batches = 0;
  while (std::optional<serve::MicroBatch> batch = batcher.NextBatch()) {
    ++batches;
    ASSERT_FALSE(batch->requests.empty());
    for (const serve::PendingRequest& request : batch->requests) {
      EXPECT_EQ(request.model.get(), batch->model.get());
    }
    EXPECT_EQ(batch->requests.size(), 2u);
  }
  EXPECT_EQ(batches, 2);
}

TEST(ServeBatcher, DispatchesPartialBatchAfterDelay) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::RequestQueue queue(16);
  TB_CHECK_OK(queue.Push(MakePending(registry.Find("STGCN", kDataset), 0)));
  // max_batch_size 8 will never fill; the 5 ms age-out must release the
  // single queued request rather than wait forever.
  serve::Batcher batcher(&queue,
                         {.max_batch_size = 8, .max_queue_delay_ms = 5.0});
  std::optional<serve::MicroBatch> batch = batcher.NextBatch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 1u);
}

// ---- Server: determinism contract ------------------------------------------

/// Serves `count` windows through a fresh server and checks every response
/// bit-equal to the direct batch-of-1 prediction of the same window.
void ServeAndCheck(const std::string& model_name, int workers,
                   int threads_per_worker, int64_t max_batch,
                   int64_t count) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor(model_name)));
  serve::LoadedModelPtr entry = registry.Find(model_name, kDataset);

  serve::ServerOptions options;
  options.workers = workers;
  options.threads_per_worker = threads_per_worker;
  options.batch.max_batch_size = max_batch;
  options.batch.max_queue_delay_ms = 2.0;
  serve::Server server(&registry, options);
  server.Start();
  std::vector<std::future<serve::PredictResponse>> futures;
  for (int64_t i = 0; i < count; ++i) {
    serve::PredictRequest request;
    request.model_name = model_name;
    request.dataset_name = kDataset;
    request.window = Window(i);
    futures.push_back(server.Submit(std::move(request)));
  }
  for (int64_t i = 0; i < count; ++i) {
    serve::PredictResponse response = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.prediction.shape(),
              Shape({TinyDataset().output_len(), TinyDataset().num_nodes()}));
    EXPECT_TRUE(BitEqual(response.prediction.ToVector(),
                         DirectPrediction(*entry, i)))
        << model_name << " window " << i << " (batch size "
        << response.batch_size << ") diverged from batch-of-1";
  }
  server.Stop();
  const serve::LatencySummary summary = server.recorder().Summary();
  EXPECT_EQ(summary.requests, count);
  EXPECT_EQ(summary.shed, 0);
  EXPECT_GT(summary.batches, 0);
  EXPECT_GT(summary.request_max, 0.0);
}

class ServeDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeDeterminismTest, BatchedBitIdenticalToBatchOfOne) {
  ServeAndCheck(GetParam(), /*workers=*/2, /*threads_per_worker=*/1,
                /*max_batch=*/3, /*count=*/7);
}

INSTANTIATE_TEST_SUITE_P(AllPaperModels, ServeDeterminismTest,
                         ::testing::ValuesIn(models::PaperModelNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ServeDeterminism, InvariantAcrossWorkerAndThreadCounts) {
  // The same windows through 1 worker x 1 thread and 3 workers x 2 threads
  // must produce the same bits (both are checked against batch-of-1).
  ServeAndCheck("Graph-WaveNet", 1, 1, 4, 8);
  ServeAndCheck("Graph-WaveNet", 3, 2, 4, 8);
}

TEST(ServeServer, UnknownModelAndBadWindowFailFast) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::Server server(&registry, {});
  server.Start();

  serve::PredictRequest unknown;
  unknown.model_name = "DCRNN";  // not loaded
  unknown.dataset_name = kDataset;
  unknown.window = Window(0);
  EXPECT_EQ(server.Submit(std::move(unknown)).get().status.code(),
            StatusCode::kNotFound);

  serve::PredictRequest bad_shape;
  bad_shape.model_name = "STGCN";
  bad_shape.dataset_name = kDataset;
  bad_shape.window = Tensor::Zeros({3, 3});
  EXPECT_EQ(server.Submit(std::move(bad_shape)).get().status.code(),
            StatusCode::kInvalidArgument);
  server.Stop();
}

TEST(ServeServer, ShedsWhenQueueFullAndCountsIt) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));

  serve::ServerOptions options;
  options.workers = 1;
  options.batch.max_batch_size = 2;
  options.queue_capacity = 2;
  serve::Server server(&registry, options);
  // Flood before Start: with no worker draining, pushes past the bound
  // must shed deterministically.
  std::vector<std::future<serve::PredictResponse>> futures;
  for (int64_t i = 0; i < 6; ++i) {
    serve::PredictRequest request;
    request.model_name = "STGCN";
    request.dataset_name = kDataset;
    request.window = Window(i);
    futures.push_back(server.Submit(std::move(request)));
  }
  server.Start();
  int64_t ok = 0, shed = 0;
  for (auto& future : futures) {
    serve::PredictResponse response = future.get();
    if (response.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  server.Stop();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 4);
  EXPECT_EQ(server.recorder().Summary().shed, 4);
}

// ---- serve_slow_worker fault site ------------------------------------------

TEST(ServeFault, SlowWorkerShowsUpInTailLatencyNotInResults) {
  ScopedFault fault("serve_slow_worker@1");  // stall the first micro-batch
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);

  serve::ServerOptions options;
  options.workers = 1;
  options.batch.max_batch_size = 4;
  options.fault_stall_ms = 60.0;
  serve::Server server(&registry, options);
  server.Start();
  std::vector<std::future<serve::PredictResponse>> futures;
  for (int64_t i = 0; i < 4; ++i) {
    serve::PredictRequest request;
    request.model_name = "STGCN";
    request.dataset_name = kDataset;
    request.window = Window(i);
    futures.push_back(server.Submit(std::move(request)));
  }
  for (int64_t i = 0; i < 4; ++i) {
    serve::PredictResponse response = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(response.status.ok());
    // Results stay bit-correct through the stall.
    EXPECT_TRUE(BitEqual(response.prediction.ToVector(),
                         DirectPrediction(*entry, i)));
  }
  server.Stop();
  const serve::LatencySummary summary = server.recorder().Summary();
  EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kServeSlowWorker), 1);
  // The injected 60 ms stall must be visible in the tail percentiles.
  EXPECT_GE(summary.request_max, 0.060);
  EXPECT_GE(summary.request_p99, 0.060);
}

TEST(ServeFault, StalledWorkerCausesShedUnderPressure) {
  ScopedFault fault("serve_slow_worker=1");  // every micro-batch stalls
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);

  serve::ServerOptions options;
  options.workers = 1;
  options.batch.max_batch_size = 1;
  options.batch.max_queue_delay_ms = 0.0;
  options.queue_capacity = 2;
  options.fault_stall_ms = 30.0;
  serve::Server server(&registry, options);
  server.Start();
  std::vector<std::future<serve::PredictResponse>> futures;
  for (int64_t i = 0; i < 10; ++i) {
    serve::PredictRequest request;
    request.model_name = "STGCN";
    request.dataset_name = kDataset;
    request.window = Window(i % 3);
    futures.push_back(server.Submit(std::move(request)));
  }
  int64_t ok = 0, shed = 0;
  for (int64_t i = 0; i < 10; ++i) {
    serve::PredictResponse response = futures[static_cast<size_t>(i)].get();
    if (response.status.ok()) {
      ++ok;
      EXPECT_TRUE(BitEqual(response.prediction.ToVector(),
                           DirectPrediction(*entry, i % 3)));
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  server.Stop();
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0) << "a 30 ms stall per batch with a 2-deep queue must "
                        "shed some of 10 back-to-back submits";
  EXPECT_EQ(server.recorder().Summary().shed, shed);
}

// ---- LatencyRecorder --------------------------------------------------------

TEST(ServeLatency, NearestRankPercentiles) {
  serve::LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) {
    recorder.RecordRequest(/*queue_seconds=*/i * 1e-4,
                           /*total_seconds=*/i * 1e-3);
  }
  const serve::LatencySummary s = recorder.Summary();
  EXPECT_EQ(s.requests, 100);
  EXPECT_DOUBLE_EQ(s.request_p50, 0.050);
  EXPECT_DOUBLE_EQ(s.request_p95, 0.095);
  EXPECT_DOUBLE_EQ(s.request_p99, 0.099);
  EXPECT_DOUBLE_EQ(s.request_max, 0.100);
  EXPECT_DOUBLE_EQ(s.queue_p50, 0.0050);
  EXPECT_DOUBLE_EQ(s.queue_p99, 0.0099);
}

TEST(ServeLatency, SingleSampleIsEveryPercentile) {
  serve::LatencyRecorder recorder;
  recorder.RecordRequest(0.001, 0.004);
  const serve::LatencySummary s = recorder.Summary();
  EXPECT_DOUBLE_EQ(s.request_p50, 0.004);
  EXPECT_DOUBLE_EQ(s.request_p99, 0.004);
  EXPECT_DOUBLE_EQ(s.request_max, 0.004);
}

TEST(ServeLatency, BatchShedAndDepthCounters) {
  serve::LatencyRecorder recorder;
  recorder.RecordBatch(4, 0.010);
  recorder.RecordBatch(2, 0.020);
  recorder.RecordShed(serve::ShedReason::kQueueFull, "M/A");
  recorder.RecordShed(serve::ShedReason::kQueueFull, "M/A");
  recorder.RecordShed(serve::ShedReason::kAgedOut, "M/B");
  recorder.RecordQueueDepth(3);
  recorder.RecordQueueDepth(7);
  const serve::LatencySummary s = recorder.Summary();
  EXPECT_EQ(s.batches, 2);
  EXPECT_EQ(s.shed, 3);
  EXPECT_EQ(s.shed_queue_full, 2);
  EXPECT_EQ(s.shed_aged_out, 1);
  EXPECT_EQ(s.shed_closed, 0);
  ASSERT_EQ(s.lanes.count("M/A"), 1u);
  EXPECT_EQ(s.lanes.at("M/A").shed_queue_full, 2);
  EXPECT_EQ(s.lanes.at("M/B").shed_aged_out, 1);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 3.0);
  EXPECT_DOUBLE_EQ(s.batch_max, 0.020);
  EXPECT_DOUBLE_EQ(s.mean_queue_depth, 5.0);
  EXPECT_EQ(s.max_queue_depth, 7);

  Table table = recorder.ToTable();
  // 20 fixed metric rows plus two rows for each of the two active lanes.
  EXPECT_EQ(table.num_rows(), 24u);
  EXPECT_NE(recorder.ToCsv().find("requests shed"), std::string::npos);
  EXPECT_NE(recorder.ToCsv().find("lane M/A"), std::string::npos);
  recorder.Reset();
  EXPECT_EQ(recorder.Summary().batches, 0);
  EXPECT_TRUE(recorder.Summary().lanes.empty());
}

TEST(ServeLatency, TwoSamplePercentiles) {
  // Nearest-rank with n=2: p50 is the first sample, p99 (and max) the
  // second.
  serve::LatencyRecorder recorder;
  recorder.RecordRequest(0.001, 0.010);
  recorder.RecordRequest(0.002, 0.030);
  const serve::LatencySummary s = recorder.Summary();
  EXPECT_DOUBLE_EQ(s.request_p50, 0.010);
  EXPECT_DOUBLE_EQ(s.request_p99, 0.030);
  EXPECT_DOUBLE_EQ(s.request_max, 0.030);
}

TEST(ServeLatency, NinetyNineSamplePercentiles) {
  // n=99: rank(p99) = ceil(98.01) = 99 -> the largest sample; rank(p50) =
  // ceil(49.5) = 50 -> the middle one.
  serve::LatencyRecorder recorder;
  for (int i = 1; i <= 99; ++i) {
    recorder.RecordRequest(0.0, i * 1e-3);
  }
  const serve::LatencySummary s = recorder.Summary();
  EXPECT_DOUBLE_EQ(s.request_p50, 0.050);
  EXPECT_DOUBLE_EQ(s.request_p99, 0.099);
}

TEST(ServeLatency, AllEqualLatenciesCollapseEveryPercentile) {
  serve::LatencyRecorder recorder;
  for (int i = 0; i < 37; ++i) {
    recorder.RecordRequest(0.002, 0.008);
  }
  const serve::LatencySummary s = recorder.Summary();
  EXPECT_DOUBLE_EQ(s.request_p50, 0.008);
  EXPECT_DOUBLE_EQ(s.request_p95, 0.008);
  EXPECT_DOUBLE_EQ(s.request_p99, 0.008);
  EXPECT_DOUBLE_EQ(s.request_max, 0.008);
  EXPECT_DOUBLE_EQ(s.queue_p50, 0.002);
  EXPECT_DOUBLE_EQ(s.queue_p99, 0.002);
}

TEST(ServeLatency, OnlyDegradedResponsesStillSummarize) {
  // A run answered entirely from the ladder's lower tiers: the request
  // percentiles must cover those latencies, tier0 stays zero, and the
  // tier-0-only queue percentiles stay zero (no sample, not a crash).
  serve::LatencyRecorder recorder;
  recorder.RecordDegraded(1, "M/A", 0.001);
  recorder.RecordDegraded(1, "M/A", 0.003);
  recorder.RecordDegraded(2, "M/A", 0.002);
  const serve::LatencySummary s = recorder.Summary();
  EXPECT_EQ(s.requests, 3);
  EXPECT_EQ(s.tier0, 0);
  EXPECT_EQ(s.tier1, 2);
  EXPECT_EQ(s.tier2, 1);
  EXPECT_DOUBLE_EQ(s.request_p50, 0.002);
  EXPECT_DOUBLE_EQ(s.request_max, 0.003);
  EXPECT_DOUBLE_EQ(s.tier1_p99, 0.003);
  EXPECT_DOUBLE_EQ(s.tier2_p99, 0.002);
  EXPECT_DOUBLE_EQ(s.queue_p50, 0.0);
  EXPECT_DOUBLE_EQ(s.queue_p99, 0.0);
  EXPECT_EQ(s.lanes.at("M/A").degraded_cache, 2);
  EXPECT_EQ(s.lanes.at("M/A").degraded_baseline, 1);
}

TEST(ServeLatency, ThroughputUsesWallClock) {
  serve::LatencyRecorder recorder;
  recorder.RecordRequest(0.0, 0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const serve::LatencySummary s = recorder.Summary();
  EXPECT_GT(s.throughput, 0.0);
  EXPECT_LT(s.throughput, 50.0);  // 1 request / >=20 ms
}

}  // namespace
}  // namespace trafficbench
