// Model-zoo tests: every registered model must build, produce the right
// output shape, propagate gradients into (nearly) all of its parameters,
// and reduce its training loss on a tiny synthetic dataset.

#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/metrics.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"
#include "src/optim/optimizer.h"

namespace trafficbench {
namespace {

using data::DatasetProfile;
using data::TrafficDataset;
using models::ModelContext;
using models::TrafficModel;

const TrafficDataset& TinyDataset() {
  static const TrafficDataset* dataset = [] {
    DatasetProfile profile;
    profile.name = "TINY";
    profile.kind = data::FeatureKind::kSpeed;
    profile.num_nodes = 10;
    profile.num_days = 4;
    profile.incidents_per_day = 3.0;
    profile.seed = 77;
    return new TrafficDataset(TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

class ModelZooTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<TrafficModel> MakeModel() {
    ModelContext context = models::MakeModelContext(TinyDataset(), 11);
    return models::CreateModel(GetParam(), context);
  }
};

TEST_P(ModelZooTest, ForwardShapeAndFiniteness) {
  auto model = MakeModel();
  model->Fit(TinyDataset());
  model->SetTraining(false);
  data::Batch batch =
      TinyDataset().MakeBatch(TrafficDataset::MakeIndices(0, 3));
  NoGradGuard no_grad;
  Tensor y = model->Forward(batch.x, Tensor());
  EXPECT_EQ(y.shape(), Shape({3, 12, 10}));
  for (float v : y.ToVector()) {
    ASSERT_TRUE(std::isfinite(v)) << GetParam() << " produced non-finite";
  }
}

TEST_P(ModelZooTest, GradientsReachParameters) {
  auto model = MakeModel();
  if (!model->IsTrainable()) GTEST_SKIP() << "baseline has no parameters";
  model->SetTraining(true);
  data::Batch batch =
      TinyDataset().MakeBatch(TrafficDataset::MakeIndices(5, 9));
  Tensor teacher = eval::NormalizeTargets(batch.y, TinyDataset().scaler());
  Tensor pred = model->Forward(batch.x, teacher);
  Tensor loss = eval::MaskedMaeLoss(
      TinyDataset().scaler().Denormalize(pred), batch.y);
  loss.Backward();

  int64_t with_grad = 0, total = 0;
  for (const auto& [name, p] : model->NamedParameters()) {
    ++total;
    bool nonzero = false;
    for (float g : p.grad()) {
      if (g != 0.0f) {
        nonzero = true;
        break;
      }
    }
    if (nonzero) ++with_grad;
  }
  EXPECT_GT(total, 0);
  // At least 80% of parameter tensors must receive gradient signal (some
  // may legitimately be zero, e.g. dead ReLU paths in a tiny batch).
  EXPECT_GE(with_grad * 5, total * 4)
      << GetParam() << ": only " << with_grad << "/" << total
      << " parameters received gradients";
}

TEST_P(ModelZooTest, TinyTrainingReducesLoss) {
  auto model = MakeModel();
  if (!model->IsTrainable()) GTEST_SKIP();
  eval::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.max_batches_per_epoch = 6;
  config.learning_rate = 3e-3;
  eval::TrainResult result = TrainModel(model.get(), TinyDataset(), config);
  ASSERT_EQ(result.epoch_losses.size(), 2u);
  EXPECT_TRUE(std::isfinite(result.epoch_losses.back()));
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front() * 1.05)
      << GetParam() << " training diverged";
}

TEST_P(ModelZooTest, EvaluationProducesMaskedMetrics) {
  auto model = MakeModel();
  model->Fit(TinyDataset());
  const data::DatasetSplits splits = TinyDataset().Splits();
  eval::HorizonReport report = eval::EvaluateModel(
      model.get(), TinyDataset(), splits.test_begin,
      std::min(splits.test_begin + 40, splits.test_end));
  EXPECT_GT(report.average.count, 0);
  EXPECT_GT(report.average.mae, 0.0);
  EXPECT_GE(report.average.rmse, report.average.mae);
  EXPECT_TRUE(std::isfinite(report.average.mape));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values("STGCN", "DCRNN", "ASTGCN", "ST-MetaNet",
                      "Graph-WaveNet", "STG2Seq", "STSGCN", "GMAN",
                      "HistoricalAverage", "LastValue"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelRegistry, ListsAllPaperModels) {
  models::RegisterBuiltinModels();
  for (const std::string& name : models::PaperModelNames()) {
    EXPECT_TRUE(models::ModelRegistry::Instance().Contains(name)) << name;
  }
  for (const std::string& name : models::BaselineModelNames()) {
    EXPECT_TRUE(models::ModelRegistry::Instance().Contains(name)) << name;
  }
}

TEST(ModelZoo, ParameterCountOrderingMatchesPaperExtremes) {
  // Table III: STSGCN has the most parameters, ST-MetaNet the fewest.
  ModelContext context = models::MakeModelContext(TinyDataset(), 3);
  auto stsgcn = models::CreateModel("STSGCN", context);
  auto st_meta = models::CreateModel("ST-MetaNet", context);
  for (const std::string& name : models::PaperModelNames()) {
    auto model = models::CreateModel(name, context);
    EXPECT_LE(model->ParameterCount(), stsgcn->ParameterCount())
        << name << " should not exceed STSGCN";
    EXPECT_GE(model->ParameterCount(), st_meta->ParameterCount())
        << name << " should not undercut ST-MetaNet";
  }
}

}  // namespace
}  // namespace trafficbench
