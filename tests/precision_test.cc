// Reduced-precision plan suite (DESIGN.md §13): bf16/int8 pack round-trip
// guarantees; the AVX2-vs-scalar bit-identity contract of the reduced
// kernels; thread-count bit-identity of reduced-tier serving; the epsilon
// verifier accepting every paper model within the documented MAE-delta
// bound; and the precision_verify fault site driving the downgrade ladder
// (corrupted panel -> fp32 plans -> eager) without ever serving an
// unverified plan.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/exec/execution_context.h"
#include "src/models/traffic_model.h"
#include "src/plan/plan.h"
#include "src/serve/model_registry.h"
#include "src/tensor/kernels.h"
#include "src/tensor/tensor.h"
#include "src/util/check.h"
#include "src/util/fault.h"

namespace trafficbench {
namespace {

class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    Result<FaultInjector> parsed = FaultInjector::Parse(spec);
    TB_CHECK(parsed.ok()) << parsed.status().ToString();
    FaultInjector::SetGlobal(std::move(parsed).value());
  }
  ~ScopedFault() { FaultInjector::SetGlobal(FaultInjector()); }
};

const data::TrafficDataset& TinyDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "SERVE";
    profile.num_nodes = 8;
    profile.num_days = 4;
    profile.seed = 414;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

constexpr char kDataset[] = "SERVE";

serve::ModelSpec SpecFor(const std::string& model_name,
                         plan::Precision precision) {
  serve::ModelSpec spec;
  spec.model_name = model_name;
  spec.dataset_name = kDataset;
  spec.dataset = &TinyDataset();
  spec.seed = 2021;
  spec.precision = precision;
  return spec;
}

Tensor Batch(int64_t batch) {
  std::vector<int64_t> samples;
  for (int64_t i = 0; i < batch; ++i) samples.push_back(i);
  return TinyDataset().MakeBatch(samples).x;
}

bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Deterministic pseudo-random fill in roughly [-1, 1] (mixed magnitudes).
void Fill(float* data, int64_t n, uint32_t seed) {
  uint32_t state = seed * 2654435761u + 1u;
  for (int64_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    data[i] = (static_cast<float>(state >> 8) / 8388608.0f) - 1.0f;
  }
}

// ---- Packing round-trips ----------------------------------------------------

TEST(PrecisionPack, Bf16RoundTripExactAndBounded) {
  // Values with <= 8 significant bits (bf16: 1 implicit + 7 explicit
  // mantissa bits) survive exactly.
  for (const float v : {0.0f, 1.0f, -2.5f, 0.15625f, 1024.0f, -0x1p-125f}) {
    EXPECT_EQ(kernels::Bf16ToFloat(kernels::FloatToBf16(v)), v) << v;
  }
  // Round-to-nearest-even: 1 + 2^-8 is exactly halfway between bf16
  // neighbours 1.0 and 1 + 2^-7; ties go to the even mantissa (1.0).
  EXPECT_EQ(kernels::Bf16ToFloat(kernels::FloatToBf16(1.0f + 0x1p-8f)), 1.0f);
  // ...while anything past halfway rounds up.
  EXPECT_EQ(kernels::Bf16ToFloat(kernels::FloatToBf16(1.0f + 0x1.8p-8f)),
            1.0f + 0x1p-7f);
  // NaN is quieted, never rounded up into infinity.
  EXPECT_TRUE(std::isnan(
      kernels::Bf16ToFloat(kernels::FloatToBf16(std::nanf("")))));
  // General bound: relative error < 2^-8 after round-to-nearest.
  std::vector<float> values(997);
  Fill(values.data(), values.size(), 7);
  std::vector<uint16_t> packed(values.size());
  kernels::PackBf16(values.data(), packed.data(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const float back = kernels::Bf16ToFloat(packed[i]);
    EXPECT_LE(std::fabs(back - values[i]),
              std::ldexp(std::fabs(values[i]), -8))
        << "i=" << i << " v=" << values[i];
  }
}

TEST(PrecisionPack, Int8PerColumnQuantization) {
  const int64_t k = 13, n = 5;
  std::vector<float> b(k * n);
  Fill(b.data(), b.size(), 11);
  for (int64_t d = 0; d < k; ++d) b[d * n + 3] = 0.0f;  // all-zero column
  b[2 * n + 1] = -4.0f;  // a dominant magnitude in column 1

  std::vector<int8_t> q(k * n);
  std::vector<float> scales(n);
  kernels::QuantizeInt8PerColumn(b.data(), k, n, q.data(), scales.data());

  EXPECT_EQ(scales[3], 1.0f);  // all-zero column: scale 1, codes 0
  EXPECT_FLOAT_EQ(scales[1], 4.0f / 127.0f);
  for (int64_t d = 0; d < k; ++d) {
    EXPECT_EQ(q[d * n + 3], 0);
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_GE(q[d * n + j], -127);
      EXPECT_LE(q[d * n + j], 127);
      // Reconstruction is within half a quantization step.
      const float back = scales[j] * static_cast<float>(q[d * n + j]);
      EXPECT_LE(std::fabs(back - b[d * n + j]), 0.5f * scales[j] + 1e-7f)
          << "(" << d << "," << j << ")";
    }
  }
}

// ---- AVX2-vs-scalar bit identity --------------------------------------------

// Sizes chosen to exercise the K blocking (KC = 256) and the N tail of the
// 16-wide micro-kernel; the dispatch (Acc) and scalar-reference (Ref)
// builds must agree bitwise, per the §13 determinism contract.
TEST(PrecisionKernels, GemmBf16DispatchMatchesScalarBitwise) {
  const int64_t m = 5, k = 300, n = 19;
  std::vector<float> a(m * k), b(k * n);
  Fill(a.data(), a.size(), 21);
  Fill(b.data(), b.size(), 22);
  std::vector<uint16_t> packed(kernels::PackedPanelElems(k, n));
  kernels::PackBf16Panels(b.data(), k, n, packed.data());

  std::vector<float> c_acc(m * n, 0.5f), c_ref(m * n, 0.5f);
  kernels::GemmBf16AccNNRows(a.data(), packed.data(), c_acc.data(), 0, m, k,
                             n);
  kernels::GemmBf16RefNNRows(a.data(), packed.data(), c_ref.data(), 0, m, k,
                             n);
  EXPECT_TRUE(BitEqual(c_acc, c_ref))
      << (kernels::GemmUsesAvx2() ? "avx2" : "scalar") << " dispatch";
}

// The gather-addressed kernel (the conv core's zero-copy im2col) must be
// bit-identical to the contiguous kernel run over the materialized A it
// describes — and bit-identical across its own AVX2/scalar pair. A is laid
// out as strided rows inside a larger buffer, addressed by base pointer +
// shared offset table.
TEST(PrecisionKernels, GemmBf16GatherMatchesMaterializedBitwise) {
  const int64_t m = 23, k = 37, n = 19, stride = 61;
  std::vector<float> src(m * stride);
  Fill(src.data(), src.size(), 41);
  std::vector<const float*> rows(m);
  std::vector<int32_t> offs(k);
  std::vector<float> a(m * k);
  for (int64_t i = 0; i < m; ++i) rows[i] = src.data() + i * stride;
  for (int64_t d = 0; d < k; ++d) {
    offs[d] = static_cast<int32_t>((d * 7 + 3) % stride);
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t d = 0; d < k; ++d) a[i * k + d] = rows[i][offs[d]];
  }
  std::vector<float> b(k * n);
  Fill(b.data(), b.size(), 42);
  std::vector<uint16_t> packed(kernels::PackedPanelElems(k, n));
  kernels::PackBf16Panels(b.data(), k, n, packed.data());

  std::vector<float> c_mat(m * n, 0.125f), c_gat(m * n, 0.125f),
      c_ref(m * n, 0.125f);
  kernels::GemmBf16AccNNRows(a.data(), packed.data(), c_mat.data(), 0, m, k,
                             n);
  kernels::GemmBf16GatherAccNNRows(rows.data(), offs.data(), packed.data(),
                                   c_gat.data(), m, k, n);
  kernels::GemmBf16GatherRefNNRows(rows.data(), offs.data(), packed.data(),
                                   c_ref.data(), m, k, n);
  EXPECT_TRUE(BitEqual(c_gat, c_mat)) << "gather vs materialized";
  EXPECT_TRUE(BitEqual(c_gat, c_ref)) << "gather avx2 vs scalar";
}

TEST(PrecisionKernels, GemmInt8DispatchMatchesScalarBitwise) {
  const int64_t m = 4, k = 300, n = 21;
  std::vector<float> a(m * k), b(k * n);
  Fill(a.data(), a.size(), 31);
  Fill(b.data(), b.size(), 32);
  std::vector<int8_t> row_q(k * n);
  std::vector<float> col_scales(n);
  kernels::QuantizeInt8PerColumn(b.data(), k, n, row_q.data(),
                                 col_scales.data());
  std::vector<int8_t> q(kernels::PackedPanelElems(k, n));
  kernels::PackInt8Panels(row_q.data(), k, n, q.data());
  std::vector<float> scales(kernels::PaddedScaleElems(n));
  kernels::PadScales(col_scales.data(), n, scales.data());

  std::vector<float> c_acc(m * n, -0.25f), c_ref(m * n, -0.25f);
  kernels::GemmInt8AccNNRows(a.data(), q.data(), scales.data(), c_acc.data(),
                             0, m, k, n);
  kernels::GemmInt8RefNNRows(a.data(), q.data(), scales.data(), c_ref.data(),
                             0, m, k, n);
  EXPECT_TRUE(BitEqual(c_acc, c_ref));
}

TEST(PrecisionKernels, SpmmBf16DispatchMatchesScalarBitwise) {
  // 6x6 CSR support with irregular row lengths; f = 13 exercises the
  // 8-wide vector body plus a scalar tail.
  const std::vector<int64_t> row_ptr = {0, 2, 5, 5, 8, 10, 12};
  const std::vector<int32_t> col_idx = {0, 3, 1, 2, 5, 0, 2, 4, 3, 5, 1, 4};
  const int64_t rows = 6, f = 13;
  std::vector<float> values_f32(col_idx.size());
  Fill(values_f32.data(), values_f32.size(), 41);
  std::vector<uint16_t> values(col_idx.size());
  kernels::PackBf16(values_f32.data(), values.data(), values_f32.size());
  std::vector<float> x(6 * f);
  Fill(x.data(), x.size(), 42);

  std::vector<float> y_acc(rows * f, 0.125f), y_ref(rows * f, 0.125f);
  kernels::SpmmBf16AccRows(row_ptr.data(), col_idx.data(), values.data(),
                           x.data(), y_acc.data(), 0, rows, f);
  kernels::SpmmBf16RefRows(row_ptr.data(), col_idx.data(), values.data(),
                           x.data(), y_ref.data(), 0, rows, f);
  EXPECT_TRUE(BitEqual(y_acc, y_ref));
}

// ---- Reduced-tier serving: determinism + accuracy ---------------------------

// For a fixed reduced tier, the served prediction is bit-identical at any
// kernel thread count, and across repeated calls (including from
// concurrent callers — the TSan pass leans on this test).
TEST(PrecisionServe, ThreadCountBitIdentityPerTier) {
  for (const plan::Precision tier :
       {plan::Precision::kBf16, plan::Precision::kInt8}) {
    serve::ModelRegistry registry;
    TB_CHECK_OK(registry.Load(SpecFor("STGCN", tier)));
    serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);
    ASSERT_NE(entry, nullptr);
    const Tensor x = Batch(4);

    std::vector<float> reference;
    {
      exec::ExecutionContext context({.threads = 1});
      exec::ExecutionContext::Bind bind(&context);
      reference = entry->Predict(x).ToVector();
      ASSERT_TRUE(entry->plans_active()) << entry->plan_summary();
    }
    for (const int threads : {2, 4}) {
      exec::ExecutionContext context({.threads = threads});
      exec::ExecutionContext::Bind bind(&context);
      EXPECT_TRUE(BitEqual(entry->Predict(x).ToVector(), reference))
          << kernels::PrecisionName(tier) << " threads " << threads;
    }
    // Concurrent callers on the shared entry see the same bits.
    std::vector<std::vector<float>> got(4);
    std::vector<std::thread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        exec::ExecutionContext context({.threads = 2});
        exec::ExecutionContext::Bind bind(&context);
        got[t] = entry->Predict(x).ToVector();
      });
    }
    for (std::thread& c : callers) c.join();
    for (int t = 0; t < 4; ++t) {
      EXPECT_TRUE(BitEqual(got[t], reference))
          << kernels::PrecisionName(tier) << " caller " << t;
    }
  }
}

// The epsilon verifier accepts the bf16 tier for every paper model (no
// silent downgrade), and the end-to-end raw-scale MAE delta vs the fp32
// eager forward stays within kMaeDeltaFrac of one data stddev — the
// accuracy half of the §13 contract.
TEST(PrecisionServe, Bf16WithinMaeDeltaBoundForAllPaperModels) {
  const float bound =
      serve::LoadedModel::kMaeDeltaFrac * TinyDataset().scaler().stddev();
  serve::ModelRegistry registry;
  exec::ExecutionContext context({.threads = 2});
  exec::ExecutionContext::Bind bind(&context);
  for (const std::string& name : models::PaperModelNames()) {
    TB_CHECK_OK(registry.Load(SpecFor(name, plan::Precision::kBf16)));
    serve::LoadedModelPtr entry = registry.Find(name, kDataset);
    ASSERT_NE(entry, nullptr);
    const Tensor x = Batch(4);
    const std::vector<float> plan_out = entry->Predict(x).ToVector();
    EXPECT_TRUE(entry->plans_active()) << name << ": "
                                       << entry->plan_summary();
    EXPECT_EQ(entry->plan_precision(), plan::Precision::kBf16)
        << name << " downgraded: " << entry->plan_summary();
    const std::vector<float> eager = entry->PredictReference(x).ToVector();
    ASSERT_EQ(plan_out.size(), eager.size());
    double abs_sum = 0.0;
    for (size_t i = 0; i < eager.size(); ++i) {
      abs_sum += std::fabs(plan_out[i] - eager[i]);
    }
    const double mae_delta = abs_sum / static_cast<double>(eager.size());
    EXPECT_LE(mae_delta, bound) << name;
  }
}

// int8 serving honours the ladder for every paper model: whatever tier the
// verifier settled on (int8, or fp32 after a downgrade), the served
// prediction stays within the MAE-delta bound — an unverified plan is
// never served.
TEST(PrecisionServe, Int8ServesWithinMaeDeltaBoundForAllPaperModels) {
  const float bound =
      serve::LoadedModel::kMaeDeltaFrac * TinyDataset().scaler().stddev();
  serve::ModelRegistry registry;
  exec::ExecutionContext context({.threads = 2});
  exec::ExecutionContext::Bind bind(&context);
  for (const std::string& name : models::PaperModelNames()) {
    TB_CHECK_OK(registry.Load(SpecFor(name, plan::Precision::kInt8)));
    serve::LoadedModelPtr entry = registry.Find(name, kDataset);
    ASSERT_NE(entry, nullptr);
    const Tensor x = Batch(4);
    const std::vector<float> plan_out = entry->Predict(x).ToVector();
    EXPECT_TRUE(entry->plans_active()) << name << ": "
                                       << entry->plan_summary();
    const std::vector<float> eager = entry->PredictReference(x).ToVector();
    ASSERT_EQ(plan_out.size(), eager.size());
    double abs_sum = 0.0;
    for (size_t i = 0; i < eager.size(); ++i) {
      abs_sum += std::fabs(plan_out[i] - eager[i]);
    }
    EXPECT_LE(abs_sum / static_cast<double>(eager.size()), bound)
        << name << " (" << kernels::PrecisionName(entry->plan_precision())
        << "): " << entry->plan_summary();
  }
}

// fp32 specs are untouched by the precision machinery: plans stay at the
// fp32 tier and keep the bitwise contract.
TEST(PrecisionServe, Fp32PlansStayBitwise) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("GMAN", plan::Precision::kFp32)));
  serve::LoadedModelPtr entry = registry.Find("GMAN", kDataset);
  ASSERT_NE(entry, nullptr);
  exec::ExecutionContext context({.threads = 2});
  exec::ExecutionContext::Bind bind(&context);
  const Tensor x = Batch(4);
  const std::vector<float> plan_out = entry->Predict(x).ToVector();
  EXPECT_EQ(entry->plan_precision(), plan::Precision::kFp32);
  EXPECT_TRUE(entry->plans_active()) << entry->plan_summary();
  EXPECT_TRUE(BitEqual(plan_out, entry->PredictReference(x).ToVector()));
}

// ---- Fault injection: the downgrade ladder ----------------------------------

// A corrupted packed panel (precision_verify fault site) must fail the
// epsilon verification; the entry downgrades to fp32 plans, which are
// recompiled, bitwise-verified, and served.
TEST(PrecisionFault, CorruptedPanelDowngradesToFp32Plans) {
  ScopedFault fault("precision_verify@1");
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN", plan::Precision::kBf16)));
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);
  ASSERT_NE(entry, nullptr);
  exec::ExecutionContext context({.threads = 1});
  exec::ExecutionContext::Bind bind(&context);

  const Tensor x = Batch(4);
  const std::vector<float> served = entry->Predict(x).ToVector();
  EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kPrecisionVerify), 1);
  EXPECT_EQ(entry->plan_precision(), plan::Precision::kFp32);
  EXPECT_TRUE(entry->plans_active()) << entry->plan_summary();
  EXPECT_NE(entry->plan_summary().find("downgraded to fp32"),
            std::string::npos)
      << entry->plan_summary();
  // The fp32 plan that replaced the rejected bf16 plan is bitwise.
  EXPECT_TRUE(BitEqual(served, entry->PredictReference(x).ToVector()));
}

// Same for the int8 tier (the corruption lands in the int8 code panel).
TEST(PrecisionFault, CorruptedInt8PanelDowngradesToFp32Plans) {
  ScopedFault fault("precision_verify@1");
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("GMAN", plan::Precision::kInt8)));
  serve::LoadedModelPtr entry = registry.Find("GMAN", kDataset);
  ASSERT_NE(entry, nullptr);
  exec::ExecutionContext context({.threads = 1});
  exec::ExecutionContext::Bind bind(&context);

  const Tensor x = Batch(2);
  const std::vector<float> served = entry->Predict(x).ToVector();
  EXPECT_EQ(entry->plan_precision(), plan::Precision::kFp32);
  EXPECT_TRUE(entry->plans_active()) << entry->plan_summary();
  EXPECT_TRUE(BitEqual(served, entry->PredictReference(x).ToVector()));
}

// The full ladder: the bf16 plan is rejected (corrupted panel), and the
// fp32 recompile then hits the plan_compile fault — the entry must end at
// the eager path, still bit-identical, with no error surfaced. The first
// plan_compile check (call #1, the bf16 compile) passes; call #2 is the
// downgrade recompile.
TEST(PrecisionFault, LadderFallsThroughToEagerWhenFp32RecompileFails) {
  ScopedFault fault("precision_verify@1,plan_compile@2");
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN", plan::Precision::kBf16)));
  serve::LoadedModelPtr entry = registry.Find("STGCN", kDataset);
  ASSERT_NE(entry, nullptr);
  exec::ExecutionContext context({.threads = 1});
  exec::ExecutionContext::Bind bind(&context);

  const Tensor x = Batch(4);
  const std::vector<float> served = entry->Predict(x).ToVector();
  EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kPrecisionVerify), 1);
  EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kPlanCompile), 1);
  EXPECT_FALSE(entry->plans_active());
  EXPECT_NE(entry->plan_summary().find("plans off"), std::string::npos)
      << entry->plan_summary();
  EXPECT_TRUE(BitEqual(served, entry->PredictReference(x).ToVector()));
}

}  // namespace
}  // namespace trafficbench
