// Tests for the traffic simulator and the windowed dataset machinery.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/data/traffic_simulator.h"
#include "src/graph/road_network.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using data::DatasetProfile;
using data::FeatureKind;
using data::SimulatorOptions;
using data::TrafficDataset;
using data::TrafficSeries;

TrafficSeries QuickSeries(FeatureKind kind, int64_t days = 3,
                          uint64_t seed = 42) {
  Rng rng(seed);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, 12, &net_rng);
  SimulatorOptions options;
  options.num_days = days;
  Rng sim_rng = rng.Fork();
  return SimulateTraffic(network, kind, options, &sim_rng);
}

TEST(Simulator, ShapesAndCalendar) {
  TrafficSeries series = QuickSeries(FeatureKind::kSpeed);
  EXPECT_EQ(series.num_nodes, 12);
  EXPECT_EQ(series.num_steps, 3 * data::kStepsPerDay);
  EXPECT_EQ(series.time_of_day.size(), static_cast<size_t>(series.num_steps));
  EXPECT_FLOAT_EQ(series.time_of_day[0], 0.0f);
  EXPECT_NEAR(series.time_of_day[144], 0.5f, 1e-5);
  EXPECT_EQ(series.day_of_week[0], 0);
  EXPECT_EQ(series.day_of_week[data::kStepsPerDay], 1);
}

TEST(Simulator, SpeedsPhysicallyPlausible) {
  TrafficSeries series = QuickSeries(FeatureKind::kSpeed);
  for (float v : series.values) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 80.0f);
  }
}

TEST(Simulator, RushHourDepressesSpeed) {
  TrafficSeries series = QuickSeries(FeatureKind::kSpeed, 5);
  // Compare 03:00-05:00 (free flow) to 07:30-08:30 (AM rush) on weekdays.
  double night = 0, rush = 0;
  int64_t night_count = 0, rush_count = 0;
  for (int64_t day = 0; day < 5; ++day) {
    if (series.day_of_week[day * 288] >= 5) continue;
    for (int64_t node = 0; node < series.num_nodes; ++node) {
      for (int64_t s = 36; s < 60; ++s) {
        const float v = series.at(day * 288 + s, node);
        if (v > 0) {
          night += v;
          ++night_count;
        }
      }
      for (int64_t s = 90; s < 102; ++s) {
        const float v = series.at(day * 288 + s, node);
        if (v > 0) {
          rush += v;
          ++rush_count;
        }
      }
    }
  }
  ASSERT_GT(night_count, 0);
  ASSERT_GT(rush_count, 0);
  EXPECT_GT(night / night_count, rush / rush_count + 5.0)
      << "rush hour should cost several mph on average";
}

TEST(Simulator, WeekdaysOnlySkipsWeekends) {
  Rng rng(1);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, 8, &net_rng);
  SimulatorOptions options;
  options.num_days = 10;
  options.weekdays_only = true;
  Rng sim_rng = rng.Fork();
  TrafficSeries series =
      SimulateTraffic(network, FeatureKind::kSpeed, options, &sim_rng);
  for (int dow : series.day_of_week) EXPECT_LT(dow, 5);
  EXPECT_EQ(series.num_steps, 10 * data::kStepsPerDay);
}

TEST(Simulator, FlowIsNotMonotoneInSpeed) {
  // Flow collapses both at night (low demand) and in heavy congestion, so
  // flow at 04:00 must be far below flow at 08:00 even though speeds are
  // higher at night — the non-monotone speed/flow relation of Sec. VI.
  TrafficSeries series = QuickSeries(FeatureKind::kFlow, 5, 9);
  double night = 0, morning = 0;
  int64_t nc = 0, mc = 0;
  for (int64_t day = 0; day < 5; ++day) {
    for (int64_t node = 0; node < series.num_nodes; ++node) {
      for (int64_t s = 42; s < 54; ++s) {
        night += series.at(day * 288 + s, node);
        ++nc;
      }
      for (int64_t s = 92; s < 104; ++s) {
        morning += series.at(day * 288 + s, node);
        ++mc;
      }
    }
  }
  EXPECT_GT(morning / mc, 2.0 * (night / nc));
}

TEST(Simulator, IncidentsCreateAbruptDrops) {
  // With vs without incidents: the max single-step speed drop should be
  // clearly larger when incidents are enabled.
  auto max_drop = [](const TrafficSeries& series) {
    float worst = 0;
    for (int64_t node = 0; node < series.num_nodes; ++node) {
      for (int64_t s = 1; s < series.num_steps; ++s) {
        const float prev = series.at(s - 1, node);
        const float now = series.at(s, node);
        if (prev > 0 && now > 0) worst = std::max(worst, prev - now);
      }
    }
    return worst;
  };
  Rng rng(5);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, 10, &net_rng);
  SimulatorOptions calm;
  calm.num_days = 4;
  calm.incidents_per_day = 0.0;
  calm.noise_level = 0.5;
  SimulatorOptions eventful = calm;
  eventful.incidents_per_day = 12.0;
  Rng rng_a(77), rng_b(77);
  TrafficSeries quiet =
      SimulateTraffic(network, FeatureKind::kSpeed, calm, &rng_a);
  TrafficSeries stormy =
      SimulateTraffic(network, FeatureKind::kSpeed, eventful, &rng_b);
  EXPECT_GT(max_drop(stormy), max_drop(quiet) + 5.0f);
}

TEST(Simulator, DeterministicGivenSeed) {
  TrafficSeries a = QuickSeries(FeatureKind::kSpeed, 2, 123);
  TrafficSeries b = QuickSeries(FeatureKind::kSpeed, 2, 123);
  EXPECT_EQ(a.values, b.values);
  TrafficSeries c = QuickSeries(FeatureKind::kSpeed, 2, 124);
  EXPECT_NE(a.values, c.values);
}

TEST(Profiles, AllSevenPresentWithPaperStructure) {
  const auto speed = data::SpeedProfiles();
  const auto flow = data::FlowProfiles();
  EXPECT_EQ(speed.size(), 3u);
  EXPECT_EQ(flow.size(), 4u);
  for (const auto& p : speed) EXPECT_EQ(p.kind, FeatureKind::kSpeed);
  for (const auto& p : flow) EXPECT_EQ(p.kind, FeatureKind::kFlow);
  // PeMSD7(M) mirror is weekday-only (Table I footnote).
  EXPECT_TRUE(data::ProfileByName("PEMSD7M-S").value().weekdays_only);
  // PeMSD7 mirror is the largest flow network, PeMSD8 the smallest.
  EXPECT_GT(data::ProfileByName("PEMSD7-F").value().num_nodes,
            data::ProfileByName("PEMSD8-F").value().num_nodes);
  EXPECT_FALSE(data::ProfileByName("NOPE").ok());
}

TEST(Profiles, ScaleProfileClamps) {
  DatasetProfile p = data::ProfileByName("METR-LA-S").value();
  DatasetProfile tiny = data::ScaleProfile(p, 0.01);
  EXPECT_EQ(tiny.num_nodes, 8);
  EXPECT_EQ(tiny.num_days, 4);
  DatasetProfile big = data::ScaleProfile(p, 2.0);
  EXPECT_EQ(big.num_nodes, p.num_nodes * 2);
}

TEST(Scaler, RoundTripAndMissingSkipped) {
  data::ZScoreScaler scaler =
      data::ZScoreScaler::Fit({10.0f, 20.0f, 0.0f, 30.0f});
  EXPECT_NEAR(scaler.mean(), 20.0f, 1e-4);
  const float z = scaler.Normalize(25.0f);
  EXPECT_NEAR(scaler.Denormalize(z), 25.0f, 1e-4);
  Tensor t = Tensor::FromVector(Shape({2}), {z, scaler.Normalize(10.0f)});
  Tensor back = scaler.Denormalize(t);
  EXPECT_NEAR(back.At({0}), 25.0f, 1e-3);
  EXPECT_NEAR(back.At({1}), 10.0f, 1e-3);
}

TEST(Dataset, WindowingShapesAndAlignment) {
  DatasetProfile profile;
  profile.num_nodes = 8;
  profile.num_days = 4;
  profile.seed = 5;
  TrafficDataset dataset = TrafficDataset::FromProfile(profile);
  EXPECT_EQ(dataset.num_samples(),
            dataset.series().num_steps - 12 - 12 + 1);
  data::Batch batch = dataset.MakeBatch({0, 100});
  EXPECT_EQ(batch.x.shape(), Shape({2, 12, 8, 2}));
  EXPECT_EQ(batch.y.shape(), Shape({2, 12, 8}));
  // y of sample s at horizon t equals the raw series at step s + 12 + t.
  EXPECT_FLOAT_EQ(batch.y.At({1, 3, 2}), dataset.series().at(100 + 12 + 3, 2));
  // x channel 0 of sample s at step t is the normalized series value.
  EXPECT_NEAR(batch.x.At({1, 5, 2, 0}),
              dataset.scaler().Normalize(dataset.series().at(105, 2)), 1e-5);
  // x channel 1 is the time of day.
  EXPECT_FLOAT_EQ(batch.x.At({0, 0, 0, 1}), dataset.series().time_of_day[0]);
}

TEST(Dataset, SplitsAre7To1To2AndChronological) {
  DatasetProfile profile;
  profile.num_nodes = 8;
  profile.num_days = 4;
  TrafficDataset dataset = TrafficDataset::FromProfile(profile);
  const data::DatasetSplits splits = dataset.Splits();
  const int64_t n = dataset.num_samples();
  EXPECT_EQ(splits.train_begin, 0);
  EXPECT_EQ(splits.test_end, n);
  EXPECT_NEAR(static_cast<double>(splits.train_end) / n, 0.7, 0.01);
  EXPECT_NEAR(static_cast<double>(splits.val_end) / n, 0.8, 0.01);
  EXPECT_LE(splits.train_end, splits.val_begin);
  EXPECT_LE(splits.val_end, splits.test_begin);
}

TEST(Dataset, MakeIndicesShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int64_t> shuffled = TrafficDataset::MakeIndices(10, 20, &rng);
  std::vector<int64_t> plain = TrafficDataset::MakeIndices(10, 20);
  EXPECT_EQ(plain.front(), 10);
  EXPECT_EQ(plain.back(), 19);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, plain);
}

TEST(Dataset, BatchIndexOutOfRangeThrows) {
  DatasetProfile profile;
  profile.num_nodes = 8;
  profile.num_days = 4;
  TrafficDataset dataset = TrafficDataset::FromProfile(profile);
  EXPECT_THROW(dataset.MakeBatch({dataset.num_samples()}),
               internal_check::CheckError);
}

TEST(Dataset, CsvExportRoundTripHeader) {
  TrafficSeries series = QuickSeries(FeatureKind::kSpeed, 2);
  const std::string path = "/tmp/tb_series_test.csv";
  TB_CHECK_OK(data::WriteSeriesCsv(series, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[4096];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line).substr(0, 28), "step,time_of_day,day_of_week");
  std::fclose(f);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace trafficbench
