// Tests for the tensor buffer pool: bucket rounding, reuse round-trips,
// the byte cap, op-layer integration (MakeOp-tagged outputs releasing on
// graph teardown), thread-safety under ParallelFor, and the >90% steady-
// state hit rate during a short STGCN training run.

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/exec/execution_context.h"
#include "src/models/traffic_model.h"
#include "src/tensor/buffer_pool.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

using exec::ExecOptions;
using exec::ExecutionContext;

TEST(BufferPool, BucketCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BufferPool::BucketCapacity(0), 64);
  EXPECT_EQ(BufferPool::BucketCapacity(1), 64);
  EXPECT_EQ(BufferPool::BucketCapacity(63), 64);
  EXPECT_EQ(BufferPool::BucketCapacity(64), 64);
  EXPECT_EQ(BufferPool::BucketCapacity(65), 128);
  EXPECT_EQ(BufferPool::BucketCapacity(129), 256);
  EXPECT_EQ(BufferPool::BucketCapacity(1000), 1024);
  EXPECT_EQ(BufferPool::BucketCapacity(1024), 1024);
}

TEST(BufferPool, ReleasedBufferIsReusedFromSameBucket) {
  BufferPool pool;
  std::vector<float> buf = pool.Acquire(100);  // bucket 128
  ASSERT_EQ(buf.size(), 100u);
  ASSERT_EQ(buf.capacity(), 128u);
  const float* ptr = buf.data();
  pool.Release(std::move(buf));

  // Any size rounding to the same bucket reuses the same allocation.
  std::vector<float> again = pool.Acquire(120);
  EXPECT_EQ(again.data(), ptr);
  EXPECT_EQ(again.size(), 120u);

  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.releases, 1);
  EXPECT_EQ(s.served_bytes, 128 * static_cast<int64_t>(sizeof(float)));
}

TEST(BufferPool, AcquireZeroedClearsRecycledContents) {
  BufferPool pool;
  std::vector<float> dirty = pool.Acquire(64);
  for (float& v : dirty) v = 7.0f;
  pool.Release(std::move(dirty));
  const std::vector<float> clean = pool.AcquireZeroed(64);
  EXPECT_EQ(pool.stats().hits, 1);
  for (float v : clean) EXPECT_EQ(v, 0.0f);
}

TEST(BufferPool, NonBucketSizedReleaseIsDropped) {
  BufferPool pool;
  std::vector<float> foreign(100);  // capacity 100: not a bucket size
  pool.Release(std::move(foreign));
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.releases, 0);
  EXPECT_EQ(s.dropped, 1);
  EXPECT_EQ(s.pooled_bytes, 0);
}

TEST(BufferPool, ByteCapDropsOverflowingReleases) {
  // Cap sized for exactly two minimal (64-float) buckets.
  BufferPool pool(/*max_pooled_bytes=*/2 * 64 * sizeof(float));
  std::vector<float> b1 = pool.Acquire(64);
  std::vector<float> b2 = pool.Acquire(64);
  std::vector<float> b3 = pool.Acquire(64);
  pool.Release(std::move(b1));
  pool.Release(std::move(b2));
  pool.Release(std::move(b3));  // would exceed the cap
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.releases, 2);
  EXPECT_EQ(s.dropped, 1);
  EXPECT_EQ(s.pooled_bytes, 2 * 64 * static_cast<int64_t>(sizeof(float)));
}

TEST(BufferPool, ClearFreesCachedBuffersAndKeepsCounters) {
  BufferPool pool;
  pool.Release(pool.Acquire(64));
  ASSERT_GT(pool.stats().pooled_bytes, 0);
  pool.Clear();
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.pooled_bytes, 0);
  EXPECT_EQ(s.misses, 1);  // counters survive Clear
  // A fresh acquire after Clear misses again.
  (void)pool.Acquire(64);
  EXPECT_EQ(pool.stats().misses, 2);
}

TEST(BufferPool, OpOutputsReturnToThePoolOnGraphTeardown) {
  ExecutionContext context(ExecOptions{.threads = 1});
  ExecutionContext::Bind bind(&context);
  const std::shared_ptr<BufferPool>& pool = context.buffer_pool();
  Rng rng(5);
  Tensor x = Tensor::Randn(Shape({64, 8}), &rng);
  {
    Tensor y = x.Relu();  // pooled op output
    ASSERT_GT(pool->stats().misses, 0);
  }
  // y's storage was released when its impl died...
  EXPECT_GT(pool->stats().releases, 0);
  // ...so an identically-shaped op now hits.
  const int64_t hits_before = pool->stats().hits;
  (void)x.Relu();
  EXPECT_GT(pool->stats().hits, hits_before);
}

TEST(BufferPool, PooledTensorOutlivesItsExecutionContext) {
  // The tensor holds a shared_ptr to the pool, so releasing after the
  // context died must be safe (the pool dies with its last reference).
  Tensor survivor;
  {
    ExecutionContext context(ExecOptions{.threads = 1});
    ExecutionContext::Bind bind(&context);
    Rng rng(6);
    survivor = Tensor::Randn(Shape({32, 4}), &rng).Relu();
  }
  EXPECT_EQ(survivor.numel(), 128);
  survivor = Tensor();  // releases into the (otherwise dead) pool: no crash
}

TEST(BufferPool, ThreadSafeUnderParallelFor) {
  ExecutionContext context(ExecOptions{.threads = 4});
  const std::shared_ptr<BufferPool>& pool = context.buffer_pool();
  constexpr int64_t kTasks = 512;
  std::atomic<int64_t> checksum{0};
  context.ParallelFor(kTasks, /*grain=*/8, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // Mixed bucket sizes, concurrent acquire/release from all workers.
      std::vector<float> buf = pool->Acquire(64 + (i % 3) * 100);
      buf[0] = static_cast<float>(i);
      checksum.fetch_add(static_cast<int64_t>(buf[0]));
      pool->Release(std::move(buf));
    }
  });
  EXPECT_EQ(checksum.load(), kTasks * (kTasks - 1) / 2);
  const BufferPool::Stats s = pool->stats();
  EXPECT_EQ(s.hits + s.misses, kTasks);
  EXPECT_EQ(s.releases + s.dropped, kTasks);
}

TEST(BufferPool, StgcnTrainingHitRateAbove90Percent) {
  data::DatasetProfile profile;
  profile.name = "POOL";
  profile.num_nodes = 8;
  profile.num_days = 4;
  profile.seed = 910;
  const data::TrafficDataset dataset =
      data::TrafficDataset::FromProfile(profile);

  ExecutionContext context(ExecOptions{.threads = 1, .profile = true});
  auto model =
      models::CreateModel("STGCN", models::MakeModelContext(dataset, 77));
  eval::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 20;
  config.seed = 5;
  config.exec = &context;
  (void)eval::TrainModel(model.get(), dataset, config);

  const BufferPool::Stats s = context.buffer_pool()->stats();
  ASSERT_GT(s.hits + s.misses, 0);
  // Steady-state training reuses the same bucket multiset every step; only
  // the first step's allocations (and bucket-size transitions) miss.
  EXPECT_GT(s.HitRate(), 0.9) << "hits " << s.hits << " misses " << s.misses;
  // The pool row is surfaced in the profile table.
  EXPECT_NE(context.ProfileTable().ToString().find("BufferPool"),
            std::string::npos);
  EXPECT_FALSE(context.PoolSummary().empty());
}

}  // namespace
}  // namespace trafficbench
