// Tests for the trainer/evaluator mechanics and failure injection:
// batch caps, horizon clamps, missing-data floods, per-node MAE.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"

namespace trafficbench {
namespace {

const data::TrafficDataset& TrainerDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "TRAINER";
    profile.num_nodes = 8;
    profile.num_days = 4;
    profile.seed = 600;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

TEST(Trainer, HonorsMaxBatchesPerEpoch) {
  auto model = models::CreateModel(
      "LastValue", models::MakeModelContext(TrainerDataset(), 1));
  // Baseline: Fit path, no batches at all.
  eval::TrainConfig config;
  eval::TrainResult result = TrainModel(model.get(), TrainerDataset(), config);
  EXPECT_TRUE(result.epoch_losses.empty());

  auto trained = models::CreateModel(
      "STG2Seq", models::MakeModelContext(TrainerDataset(), 1));
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 3;
  result = TrainModel(trained.get(), TrainerDataset(), config);
  EXPECT_EQ(result.batches_per_epoch, 3);
  EXPECT_EQ(result.epoch_losses.size(), 1u);
}

TEST(Trainer, FullSplitWhenUncapped) {
  auto model = models::CreateModel(
      "LastValue", models::MakeModelContext(TrainerDataset(), 1));
  const data::DatasetSplits splits = TrainerDataset().Splits();
  const int64_t expected =
      (splits.train_end - splits.train_begin + 15) / 16;
  auto trained = models::CreateModel(
      "STG2Seq", models::MakeModelContext(TrainerDataset(), 1));
  eval::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.max_batches_per_epoch = 0;  // full split
  // Use a learning rate of 0 so this is pure mechanics, fast convergence
  // irrelevant.
  config.learning_rate = 0.0;
  eval::TrainResult result = TrainModel(trained.get(), TrainerDataset(), config);
  EXPECT_EQ(result.batches_per_epoch, expected);
  (void)model;
}

TEST(Trainer, ZeroLearningRateFreezesParameters) {
  auto model = models::CreateModel(
      "Graph-WaveNet", models::MakeModelContext(TrainerDataset(), 3));
  std::vector<std::vector<float>> before;
  for (const Tensor& p : model->Parameters()) before.push_back(p.ToVector());
  eval::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 2;
  config.learning_rate = 0.0;
  TrainModel(model.get(), TrainerDataset(), config);
  auto params = model->Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i].ToVector(), before[i]);
  }
}

TEST(Trainer, LrDecayReducesRate) {
  // Indirect check through TrainConfig: two training runs differing only in
  // lr_decay_every must diverge after the first decay epoch.
  auto run = [](int decay_every) {
    auto model = models::CreateModel(
        "STG2Seq", models::MakeModelContext(TrainerDataset(), 7));
    eval::TrainConfig config;
    config.epochs = 3;
    config.batch_size = 8;
    config.max_batches_per_epoch = 4;
    config.lr_decay_every = decay_every;
    config.lr_decay = 0.1;
    eval::TrainResult result =
        TrainModel(model.get(), TrainerDataset(), config);
    return result.epoch_losses.back();
  };
  EXPECT_NE(run(1), run(0));
}

TEST(Evaluator, HorizonClampForShortOutputs) {
  // A 4-step dataset: horizons 15/30/60 clamp to the last step.
  data::DatasetProfile profile;
  profile.num_nodes = 8;
  profile.num_days = 4;
  profile.seed = 601;
  data::TrafficDataset base = data::TrafficDataset::FromProfile(profile);
  data::TrafficDataset dataset(base.network(), base.series(), 12, 4);
  models::ModelContext context = models::MakeModelContext(dataset, 1);
  auto model = models::CreateModel("LastValue", context);
  eval::HorizonReport report =
      eval::EvaluateModel(model.get(), dataset, 0, 50);
  EXPECT_GT(report.average.count, 0);
  // 30- and 60-minute slots both clamp to step 3 and therefore agree.
  EXPECT_DOUBLE_EQ(report.horizon30.mae, report.horizon60.mae);
}

TEST(Evaluator, PerNodeMaeMatchesManualComputation) {
  models::ModelContext context =
      models::MakeModelContext(TrainerDataset(), 1);
  auto model = models::CreateModel("LastValue", context);
  const int64_t begin = 10, end = 14;
  std::vector<double> mae =
      eval::PerNodeMae(model.get(), TrainerDataset(), begin, end, 2);
  ASSERT_EQ(mae.size(), 8u);

  // Manual recomputation for node 0.
  model->SetTraining(false);
  NoGradGuard no_grad;
  double abs_sum = 0;
  int64_t count = 0;
  for (int64_t s = begin; s < end; ++s) {
    data::Batch batch = TrainerDataset().MakeBatch({s});
    Tensor pred = model->Forward(batch.x, Tensor());
    for (int64_t t = 0; t < 12; ++t) {
      const float target = batch.y.At({0, t, 0});
      if (target == 0.0f) continue;
      abs_sum += std::fabs(
          TrainerDataset().scaler().Denormalize(pred.At({0, t, 0})) - target);
      ++count;
    }
  }
  EXPECT_NEAR(mae[0], abs_sum / count, 1e-6);
}

TEST(FailureInjection, HeavilyMissingDataStillTrains) {
  // 40% missing readings: scaler fitting, training and metrics must all
  // stay finite (missing entries are masked everywhere).
  data::DatasetProfile profile;
  profile.num_nodes = 8;
  profile.num_days = 4;
  profile.seed = 700;
  Rng rng(profile.seed);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      graph::NetworkTopology::kCorridor, profile.num_nodes, &net_rng);
  data::SimulatorOptions options;
  options.num_days = profile.num_days;
  options.missing_rate = 0.4;
  Rng sim_rng = rng.Fork();
  data::TrafficSeries series = SimulateTraffic(
      network, data::FeatureKind::kSpeed, options, &sim_rng);
  data::TrafficDataset dataset(std::move(network), std::move(series));

  auto model = models::CreateModel("Graph-WaveNet",
                                   models::MakeModelContext(dataset, 2));
  eval::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 5;
  eval::TrainResult result = TrainModel(model.get(), dataset, config);
  EXPECT_TRUE(std::isfinite(result.epoch_losses.front()));
  const data::DatasetSplits splits = dataset.Splits();
  eval::HorizonReport report = eval::EvaluateModel(
      model.get(), dataset, splits.test_begin,
      std::min(splits.test_begin + 30, splits.test_end));
  EXPECT_GT(report.average.count, 0);
  EXPECT_TRUE(std::isfinite(report.average.mae));
  EXPECT_TRUE(std::isfinite(report.average.mape));
}

TEST(FailureInjection, AllMaskedLossIsZeroWithZeroGradient) {
  Tensor pred = Tensor::FromVector(Shape({4}), {1, 2, 3, 4})
                    .set_requires_grad(true);
  Tensor target = Tensor::Zeros(Shape({4}));  // everything missing
  Tensor loss = eval::MaskedMaeLoss(pred, target);
  EXPECT_FLOAT_EQ(loss.Item(), 0.0f);
  loss.Backward();
  for (float g : pred.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(FailureInjection, NormalizeTargetsKeepsShape) {
  data::Batch batch = TrainerDataset().MakeBatch({0, 1, 2});
  Tensor normalized =
      eval::NormalizeTargets(batch.y, TrainerDataset().scaler());
  EXPECT_EQ(normalized.shape(), batch.y.shape());
  // Round trip through the scaler recovers the raw values.
  const float raw = batch.y.At({1, 4, 3});
  EXPECT_NEAR(TrainerDataset().scaler().Denormalize(normalized.At({1, 4, 3})),
              raw, 1e-3);
}

TEST(Evaluator, HorizonCurveMatchesReportSlices) {
  models::ModelContext context =
      models::MakeModelContext(TrainerDataset(), 1);
  auto model = models::CreateModel("LastValue", context);
  const int64_t begin = 0, end = 60;
  std::vector<double> curve =
      eval::HorizonCurve(model.get(), TrainerDataset(), begin, end);
  ASSERT_EQ(curve.size(), 12u);
  eval::HorizonReport report =
      eval::EvaluateModel(model.get(), TrainerDataset(), begin, end);
  EXPECT_NEAR(curve[2], report.horizon15.mae, 1e-9);
  EXPECT_NEAR(curve[5], report.horizon30.mae, 1e-9);
  EXPECT_NEAR(curve[11], report.horizon60.mae, 1e-9);
  // Persistence error accumulates along the curve.
  EXPECT_GT(curve[11], curve[0]);
}

}  // namespace
}  // namespace trafficbench
