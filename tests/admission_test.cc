// Overload-robustness suite (DESIGN.md §14): the admission controller's
// pressure math and tier decisions, the window-keyed response cache's
// correctness contract (exact-bytes keys, collision compare, poison
// detection, registry-swap invalidation, bounded LRU), the deterministic
// arrival-trace generator, the degrade_ladder fault site's forced-tier +
// poisoned-cache fall-through, and a closed-loop overload run proving the
// ladder's zero-hard-drop guarantee with bitwise-correct answers per tier.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/serve/admission.h"
#include "src/serve/arrival.h"
#include "src/serve/batcher.h"
#include "src/serve/model_registry.h"
#include "src/serve/response_cache.h"
#include "src/serve/server.h"
#include "src/util/check.h"
#include "src/util/fault.h"

namespace trafficbench {
namespace {

class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    Result<FaultInjector> parsed = FaultInjector::Parse(spec);
    TB_CHECK(parsed.ok()) << parsed.status().ToString();
    FaultInjector::SetGlobal(std::move(parsed).value());
  }
  ~ScopedFault() { FaultInjector::SetGlobal(FaultInjector()); }
};

const data::TrafficDataset& TinyDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "LADDER";
    profile.num_nodes = 8;
    profile.num_days = 4;
    profile.seed = 515;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

constexpr char kDataset[] = "LADDER";

serve::ModelSpec SpecFor(const std::string& model_name) {
  serve::ModelSpec spec;
  spec.model_name = model_name;
  spec.dataset_name = kDataset;
  spec.dataset = &TinyDataset();
  spec.seed = 2021;
  return spec;
}

/// One test window as [T_in, N, 2] (sample index into the full dataset).
Tensor Window(int64_t sample) {
  Tensor x = TinyDataset().MakeBatch({sample}).x;
  return Tensor::FromVector({x.dim(1), x.dim(2), x.dim(3)}, x.ToVector());
}

std::vector<float> DirectPrediction(const serve::LoadedModel& model,
                                    int64_t sample) {
  return model.Predict(TinyDataset().MakeBatch({sample}).x).ToVector();
}

bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ---- AdmissionController ----------------------------------------------------

TEST(AdmissionControl, IdleLaneAdmitsFullTier) {
  serve::AdmissionOptions options;
  options.enabled = true;
  serve::AdmissionController admission(options);
  serve::LaneSignals idle;
  idle.queue_capacity = 64;
  EXPECT_DOUBLE_EQ(admission.Pressure("m/d", idle), 0.0);
  EXPECT_EQ(admission.Admit("m/d", idle), serve::Tier::kFull);
}

TEST(AdmissionControl, QueueFillDrivesTheLadder) {
  serve::AdmissionController admission({.enabled = true});
  serve::LaneSignals signals;
  signals.queue_capacity = 100;
  signals.queue_depth = 60;  // pressure 0.6: past degrade_at (0.5)
  EXPECT_EQ(admission.Admit("m/d", signals), serve::Tier::kCached);
  signals.queue_depth = 95;  // pressure 0.95: past baseline_at (0.9)
  EXPECT_EQ(admission.Admit("m/d", signals), serve::Tier::kBaseline);
}

TEST(AdmissionControl, HeadAgeNormalizedToTwiceTheSlo) {
  serve::AdmissionOptions options;
  options.enabled = true;
  options.slo_ms = 50.0;
  serve::AdmissionController admission(options);
  serve::LaneSignals signals;
  signals.queue_capacity = 1000;  // keep the depth signal negligible
  signals.head_age_ms = 50.0;     // exactly the SLO -> pressure 0.5
  EXPECT_DOUBLE_EQ(admission.Pressure("m/d", signals), 0.5);
  EXPECT_EQ(admission.Admit("m/d", signals), serve::Tier::kCached);
  signals.head_age_ms = 100.0;  // twice the SLO -> pressure 1.0
  EXPECT_DOUBLE_EQ(admission.Pressure("m/d", signals), 1.0);
  EXPECT_EQ(admission.Admit("m/d", signals), serve::Tier::kBaseline);
}

TEST(AdmissionControl, RecentP99FeedsPressurePerLane) {
  serve::AdmissionOptions options;
  options.enabled = true;
  options.slo_ms = 50.0;
  serve::AdmissionController admission(options);
  // A slow lane: every completion at 100 ms = twice the SLO.
  for (int i = 0; i < 10; ++i) admission.ObserveCompletion("slow", 0.100);
  EXPECT_DOUBLE_EQ(admission.RecentP99("slow"), 0.100);
  serve::LaneSignals quiet;
  quiet.queue_capacity = 1000;
  EXPECT_DOUBLE_EQ(admission.Pressure("slow", quiet), 1.0);
  EXPECT_EQ(admission.Admit("slow", quiet), serve::Tier::kBaseline);
  // The latency of one lane must not penalize another.
  EXPECT_DOUBLE_EQ(admission.Pressure("fast", quiet), 0.0);
  EXPECT_EQ(admission.Admit("fast", quiet), serve::Tier::kFull);
}

TEST(AdmissionControl, LatencyWindowForgetsOldCompletions) {
  serve::AdmissionOptions options;
  options.enabled = true;
  options.slo_ms = 50.0;
  options.latency_window = 4;
  serve::AdmissionController admission(options);
  for (int i = 0; i < 4; ++i) admission.ObserveCompletion("m/d", 0.200);
  EXPECT_DOUBLE_EQ(admission.RecentP99("m/d"), 0.200);
  // Four fast completions overwrite the whole ring: the incident is over.
  for (int i = 0; i < 4; ++i) admission.ObserveCompletion("m/d", 0.001);
  EXPECT_DOUBLE_EQ(admission.RecentP99("m/d"), 0.001);
}

TEST(AdmissionControl, PressureIsTheMaxOfItsSignals) {
  serve::AdmissionOptions options;
  options.enabled = true;
  options.slo_ms = 50.0;
  serve::AdmissionController admission(options);
  serve::LaneSignals signals;
  signals.queue_capacity = 100;
  signals.queue_depth = 30;    // 0.3
  signals.head_age_ms = 20.0;  // 0.2
  admission.ObserveCompletion("m/d", 0.070);  // p99 signal: 0.7
  EXPECT_DOUBLE_EQ(admission.Pressure("m/d", signals), 0.7);
}

// ---- ResponseCache ----------------------------------------------------------

class ResponseCacheTest : public ::testing::Test {
 protected:
  ResponseCacheTest() {
    TB_CHECK_OK(registry_.Load(SpecFor("LastValue")));
    model_ = registry_.Find("LastValue", kDataset);
    TB_CHECK(model_ != nullptr);
  }

  Tensor PredictionOf(int64_t sample) {
    return Tensor::FromVector(
        {TinyDataset().output_len(), TinyDataset().num_nodes()},
        DirectPrediction(*model_, sample));
  }

  serve::ModelRegistry registry_;
  serve::LoadedModelPtr model_;
};

TEST_F(ResponseCacheTest, ExactWindowRoundTrip) {
  serve::ResponseCache cache({.capacity = 8});
  EXPECT_TRUE(cache.enabled());
  Tensor out;
  EXPECT_FALSE(cache.Lookup(model_, Window(0), &out));
  cache.Insert(model_, Window(0), PredictionOf(0));
  ASSERT_TRUE(cache.Lookup(model_, Window(0), &out));
  EXPECT_TRUE(BitEqual(out.ToVector(), PredictionOf(0).ToVector()));
  const serve::ResponseCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
}

TEST_F(ResponseCacheTest, KeyIsExactBytesNoFloatTolerance) {
  serve::ResponseCache cache({.capacity = 8});
  cache.Insert(model_, Window(0), PredictionOf(0));
  // Nudge a single element by one ulp: semantically "the same" traffic
  // state, but not the same bytes — must miss.
  std::vector<float> nudged = Window(0).ToVector();
  nudged[3] = std::nextafter(nudged[3], 1e9f);
  Tensor out;
  EXPECT_FALSE(cache.Lookup(
      model_, Tensor::FromVector(Window(0).shape(), nudged), &out));
  EXPECT_TRUE(cache.Lookup(model_, Window(0), &out));
}

TEST_F(ResponseCacheTest, HashCollisionNeverServesWrongPrediction) {
  // Constant hash: every entry lands on one chain, so only the stored-key
  // byte compare separates the windows.
  serve::ResponseCacheOptions options;
  options.capacity = 8;
  options.hash_fn = [](const void*, size_t) -> uint64_t { return 42; };
  serve::ResponseCache cache(options);
  cache.Insert(model_, Window(0), PredictionOf(0));
  cache.Insert(model_, Window(1), PredictionOf(1));
  Tensor out;
  ASSERT_TRUE(cache.Lookup(model_, Window(0), &out));
  EXPECT_TRUE(BitEqual(out.ToVector(), PredictionOf(0).ToVector()));
  ASSERT_TRUE(cache.Lookup(model_, Window(1), &out));
  EXPECT_TRUE(BitEqual(out.ToVector(), PredictionOf(1).ToVector()));
  EXPECT_GT(cache.stats().collisions, 0);
  // A third window on the same chain misses cleanly instead of matching.
  EXPECT_FALSE(cache.Lookup(model_, Window(2), &out));
}

TEST_F(ResponseCacheTest, BoundedLruEvictsLeastRecentlyUsed) {
  serve::ResponseCache cache({.capacity = 2});
  cache.Insert(model_, Window(0), PredictionOf(0));
  cache.Insert(model_, Window(1), PredictionOf(1));
  Tensor out;
  ASSERT_TRUE(cache.Lookup(model_, Window(0), &out));  // 0 becomes MRU
  cache.Insert(model_, Window(2), PredictionOf(2));    // evicts 1
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.Lookup(model_, Window(0), &out));
  EXPECT_FALSE(cache.Lookup(model_, Window(1), &out));
  EXPECT_TRUE(cache.Lookup(model_, Window(2), &out));
}

TEST_F(ResponseCacheTest, PoisonedEntryIsDetectedAndDropped) {
  serve::ResponseCache cache({.capacity = 8});
  cache.Insert(model_, Window(0), PredictionOf(0));
  ASSERT_TRUE(cache.CorruptMostRecent());
  Tensor out;
  // The checksum catches the flipped byte: miss, entry dropped, counted.
  EXPECT_FALSE(cache.Lookup(model_, Window(0), &out));
  EXPECT_EQ(cache.stats().poisoned, 1);
  EXPECT_EQ(cache.size(), 0);
  // Re-inserting heals the key.
  cache.Insert(model_, Window(0), PredictionOf(0));
  ASSERT_TRUE(cache.Lookup(model_, Window(0), &out));
  EXPECT_TRUE(BitEqual(out.ToVector(), PredictionOf(0).ToVector()));
}

TEST_F(ResponseCacheTest, RegistrySwapInvalidatesStaleEntries) {
  serve::ResponseCache cache({.capacity = 8});
  cache.Insert(model_, Window(0), PredictionOf(0));
  // Reload the same (model, dataset) key: a new LoadedModel instance now
  // serves the lane, so the cached prediction belongs to dead weights.
  TB_CHECK_OK(registry_.Load(SpecFor("LastValue")));
  serve::LoadedModelPtr reloaded = registry_.Find("LastValue", kDataset);
  ASSERT_NE(reloaded, model_);
  Tensor out;
  EXPECT_FALSE(cache.Lookup(reloaded, Window(0), &out));
  EXPECT_EQ(cache.stats().invalidated, 1);
  EXPECT_EQ(cache.size(), 0);
}

TEST_F(ResponseCacheTest, ZeroCapacityDisablesTheCache) {
  serve::ResponseCache cache({.capacity = 0});
  EXPECT_FALSE(cache.enabled());
  cache.Insert(model_, Window(0), PredictionOf(0));
  Tensor out;
  EXPECT_FALSE(cache.Lookup(model_, Window(0), &out));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.stats().insertions, 0);
}

// ---- Arrival traces ---------------------------------------------------------

TEST(ArrivalTrace, ParseAndNameRoundTrip) {
  serve::TraceKind kind;
  ASSERT_TRUE(serve::ParseTraceKind("burst", &kind));
  EXPECT_EQ(kind, serve::TraceKind::kBurst);
  EXPECT_STREQ(serve::TraceKindName(kind), "burst");
  ASSERT_TRUE(serve::ParseTraceKind("diurnal", &kind));
  EXPECT_EQ(kind, serve::TraceKind::kDiurnal);
  EXPECT_FALSE(serve::ParseTraceKind("bursty", &kind));
}

TEST(ArrivalTrace, UniformMatchesFixedRatePacing) {
  const std::vector<double> times =
      serve::ArrivalTimes(serve::TraceKind::kUniform, 100.0, 5, 7);
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);  // first request fires immediately
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i] - times[i - 1], 0.010, 1e-12);
  }
}

TEST(ArrivalTrace, SeededTracesReplayBitIdentically) {
  const auto a = serve::ArrivalTimes(serve::TraceKind::kBurst, 50.0, 64, 11);
  const auto b = serve::ArrivalTimes(serve::TraceKind::kBurst, 50.0, 64, 11);
  const auto c = serve::ArrivalTimes(serve::TraceKind::kBurst, 50.0, 64, 12);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
}

TEST(ArrivalTrace, MultipliersShapeTheProfiles) {
  using serve::TraceKind;
  using serve::TraceRateMultiplier;
  // Burst: the first third of each cycle runs hot, the rest calm.
  EXPECT_DOUBLE_EQ(TraceRateMultiplier(TraceKind::kBurst, 0.05), 2.5);
  EXPECT_DOUBLE_EQ(TraceRateMultiplier(TraceKind::kBurst, 0.10), 0.4);
  // Diurnal: rush peaks near u=0.3 and u=0.75 over a low floor.
  const double rush = TraceRateMultiplier(TraceKind::kDiurnal, 0.30);
  const double night = TraceRateMultiplier(TraceKind::kDiurnal, 0.02);
  EXPECT_GT(rush, 2.0);
  EXPECT_LT(night, 0.6);
  EXPECT_GT(TraceRateMultiplier(TraceKind::kDiurnal, 0.75), 2.0);
  // Flash crowd: one 8x spike over the middle tenth.
  EXPECT_DOUBLE_EQ(TraceRateMultiplier(TraceKind::kFlash, 0.50), 8.0);
  EXPECT_DOUBLE_EQ(TraceRateMultiplier(TraceKind::kFlash, 0.20), 0.6);
  // Uniform is flat by definition.
  EXPECT_DOUBLE_EQ(TraceRateMultiplier(TraceKind::kUniform, 0.9), 1.0);
}

// ---- Lane age-out -----------------------------------------------------------

TEST(AdmissionAgeOut, BatcherSweepsOverAgeRequestsAsExpired) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("LastValue")));
  serve::LoadedModelPtr model = registry.Find("LastValue", kDataset);

  serve::RequestQueue queue(16);
  auto push_aged_by = [&](double age_ms) {
    serve::PendingRequest request;
    request.model = model;
    request.window = Window(0);
    request.enqueue_time =
        std::chrono::steady_clock::now() -
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(age_ms));
    TB_CHECK_OK(queue.Push(std::move(request)));
  };
  push_aged_by(500.0);  // far past the limit
  push_aged_by(400.0);
  push_aged_by(0.0);  // fresh

  serve::BatchOptions options;
  options.max_batch_size = 8;
  options.max_queue_delay_ms = 0.0;
  options.max_lane_age_ms = 100.0;
  serve::Batcher batcher(&queue, options);

  // First call: the expired-only sweep (no model attached).
  std::optional<serve::MicroBatch> swept = batcher.NextBatch();
  ASSERT_TRUE(swept.has_value());
  EXPECT_EQ(swept->model, nullptr);
  EXPECT_TRUE(swept->requests.empty());
  EXPECT_EQ(swept->expired.size(), 2u);
  // Second call: the fresh request batches normally.
  std::optional<serve::MicroBatch> batch = batcher.NextBatch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->model, model);
  ASSERT_EQ(batch->requests.size(), 1u);
  EXPECT_TRUE(batch->expired.empty());
  EXPECT_EQ(queue.size(), 0);
}

TEST(AdmissionAgeOut, QueueSignalsReportLaneDepthAndHeadAge) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("LastValue")));
  serve::LoadedModelPtr model = registry.Find("LastValue", kDataset);

  serve::RequestQueue queue(4);
  serve::LaneSignals empty = queue.Signals("LastValue", kDataset);
  EXPECT_EQ(empty.queue_depth, 0);
  EXPECT_EQ(empty.queue_capacity, 4);
  EXPECT_EQ(empty.lane_depth, 0);
  EXPECT_DOUBLE_EQ(empty.head_age_ms, 0.0);

  serve::PendingRequest request;
  request.model = model;
  request.window = Window(0);
  request.enqueue_time =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(50);
  TB_CHECK_OK(queue.Push(std::move(request)));
  serve::LaneSignals signals = queue.Signals("LastValue", kDataset);
  EXPECT_EQ(signals.queue_depth, 1);
  EXPECT_EQ(signals.lane_depth, 1);
  EXPECT_GE(signals.head_age_ms, 50.0);
  // A different lane sees the global depth but no lane-local pressure.
  serve::LaneSignals other = queue.Signals("STGCN", kDataset);
  EXPECT_EQ(other.queue_depth, 1);
  EXPECT_EQ(other.lane_depth, 0);
  EXPECT_DOUBLE_EQ(other.head_age_ms, 0.0);
}

TEST(AdmissionAgeOut, PushReportsWhyItShed) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("LastValue")));
  serve::LoadedModelPtr model = registry.Find("LastValue", kDataset);
  auto make_request = [&] {
    serve::PendingRequest request;
    request.model = model;
    request.window = Window(0);
    request.enqueue_time = std::chrono::steady_clock::now();
    return request;
  };

  serve::RequestQueue queue(1);
  serve::ShedReason why = serve::ShedReason::kClosed;
  TB_CHECK_OK(queue.Push(make_request(), &why));
  EXPECT_FALSE(queue.Push(make_request(), &why).ok());
  EXPECT_EQ(why, serve::ShedReason::kQueueFull);
  queue.Close();
  EXPECT_FALSE(queue.Push(make_request(), &why).ok());
  EXPECT_EQ(why, serve::ShedReason::kClosed);
}

// ---- degrade_ladder fault site ----------------------------------------------

TEST(DegradeFault, SiteParsesAndCounts) {
  ScopedFault fault("degrade_ladder@2");
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.enabled());
  EXPECT_FALSE(injector.Should(FaultSite::kDegradeLadder));
  EXPECT_TRUE(injector.Should(FaultSite::kDegradeLadder));
  EXPECT_FALSE(injector.Should(FaultSite::kDegradeLadder));
}

TEST(DegradeFault, PoisonedCacheEntryFallsThroughToBaseline) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  TB_CHECK_OK(registry.Load(SpecFor("HistoricalAverage")));
  serve::LoadedModelPtr full = registry.Find("STGCN", kDataset);
  serve::LoadedModelPtr baseline = registry.Find("HistoricalAverage", kDataset);
  ASSERT_NE(registry.FindFallback(kDataset), nullptr);
  EXPECT_FALSE(baseline->trainable());

  serve::ServerOptions options;
  options.workers = 1;
  options.admission.enabled = true;
  options.cache_capacity = 16;
  serve::Server server(&registry, options);
  server.Start();
  auto request = [] {
    serve::PredictRequest r;
    r.model_name = "STGCN";
    r.dataset_name = kDataset;
    r.window = Window(0);
    return r;
  };

  // Idle lane: the first submit runs tier 0 and populates the cache.
  serve::PredictResponse first = server.Predict(request());
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.tier, 0);
  EXPECT_EQ(server.cache().size(), 1);

  // Fault armed: the next submit is forced to the cache tier AND the
  // cache's freshest entry (this exact window) is corrupted. The checksum
  // must detect the poison and the ladder must answer from the tier-2
  // baseline — never the corrupted bytes, never a hard drop.
  serve::PredictResponse degraded;
  {
    ScopedFault fault("degrade_ladder@1");
    degraded = server.Predict(request());
  }
  server.Stop();
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_EQ(degraded.tier, 2);
  EXPECT_TRUE(BitEqual(degraded.prediction.ToVector(),
                       DirectPrediction(*baseline, 0)));
  EXPECT_FALSE(BitEqual(degraded.prediction.ToVector(),
                        DirectPrediction(*full, 0)));
  EXPECT_EQ(server.cache().stats().poisoned, 1);
  const serve::LatencySummary s = server.recorder().Summary();
  EXPECT_EQ(s.shed, 0);
  EXPECT_EQ(s.tier0, 1);
  EXPECT_EQ(s.tier2, 1);
}

TEST(DegradeFault, IntactCacheEntryServesTierOneBitwise) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  TB_CHECK_OK(registry.Load(SpecFor("HistoricalAverage")));
  serve::LoadedModelPtr full = registry.Find("STGCN", kDataset);

  serve::ServerOptions options;
  options.workers = 1;
  options.admission.enabled = true;
  // Tier decisions here must come from the fault site alone, so park the
  // SLO far above any machine's forward latency (sanitizer builds run the
  // warm-up predicts slowly enough to trip the recent-p99 signal at the
  // default 50 ms) and pin the clean-hit path by warming a second window
  // after the corruption target: the fault corrupts the MRU entry, the
  // older window's entry stays intact.
  options.admission.slo_ms = 1e9;
  options.cache_capacity = 16;
  serve::Server server(&registry, options);
  server.Start();
  auto request = [](int64_t sample) {
    serve::PredictRequest r;
    r.model_name = "STGCN";
    r.dataset_name = kDataset;
    r.window = Window(sample);
    return r;
  };

  ASSERT_EQ(server.Predict(request(0)).tier, 0);  // cache window 0
  ASSERT_EQ(server.Predict(request(1)).tier, 0);  // window 1 becomes MRU
  serve::PredictResponse cached;
  {
    // The fault corrupts the MRU entry (window 1); window 0's entry stays
    // intact and must serve tier 1 with the full model's exact bytes.
    ScopedFault fault("degrade_ladder@1");
    cached = server.Predict(request(0));
  }
  server.Stop();
  ASSERT_TRUE(cached.status.ok());
  EXPECT_EQ(cached.tier, 1);
  EXPECT_TRUE(
      BitEqual(cached.prediction.ToVector(), DirectPrediction(*full, 0)));
  EXPECT_EQ(server.cache().stats().hits, 1);
  EXPECT_EQ(server.cache().stats().poisoned, 0);
}

// ---- Closed-loop overload ---------------------------------------------------

TEST(AdmissionOverload, LadderAbsorbsTenTimesCapacityWithZeroHardDrops) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));
  TB_CHECK_OK(registry.Load(SpecFor("HistoricalAverage")));
  serve::LoadedModelPtr full = registry.Find("STGCN", kDataset);
  serve::LoadedModelPtr baseline = registry.Find("HistoricalAverage", kDataset);

  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 4;  // tiny queue: the flood must overflow it
  options.batch.max_batch_size = 4;
  options.admission.enabled = true;
  options.admission.slo_ms = 20.0;
  options.cache_capacity = 64;
  serve::Server server(&registry, options);
  server.Start();

  // 10x the queue capacity per wave, four waves, bursty submit pattern
  // cycling a handful of windows (so the response cache can actually hit).
  constexpr int64_t kWaves = 4;
  constexpr int64_t kPerWave = 40;
  std::vector<std::future<serve::PredictResponse>> futures;
  std::vector<int64_t> sample_of;
  for (int64_t wave = 0; wave < kWaves; ++wave) {
    for (int64_t i = 0; i < kPerWave; ++i) {
      const int64_t sample = i % 5;
      serve::PredictRequest request;
      request.model_name = "STGCN";
      request.dataset_name = kDataset;
      request.window = Window(sample);
      futures.push_back(server.Submit(std::move(request)));
      sample_of.push_back(sample);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  int64_t by_tier[3] = {0, 0, 0};
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::PredictResponse response = futures[i].get();
    // Zero hard drops: every single request gets an ok answer.
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_GE(response.tier, 0);
    ASSERT_LE(response.tier, 2);
    ++by_tier[response.tier];
    const std::vector<float> got = response.prediction.ToVector();
    if (response.tier == 2) {
      // Tier 2 is exactly the training-free baseline.
      EXPECT_TRUE(BitEqual(got, DirectPrediction(*baseline, sample_of[i])));
    } else {
      // Tiers 0 and 1 carry the full model's bytes (the cache only ever
      // stores tier-0 results), unperturbed by the overload around them.
      EXPECT_TRUE(BitEqual(got, DirectPrediction(*full, sample_of[i])));
    }
  }
  server.Stop();

  const serve::LatencySummary s = server.recorder().Summary();
  EXPECT_EQ(s.shed, 0);
  EXPECT_EQ(s.requests, kWaves * kPerWave);
  EXPECT_EQ(s.tier0, by_tier[0]);
  EXPECT_EQ(s.tier1, by_tier[1]);
  EXPECT_EQ(s.tier2, by_tier[2]);
  // A 4-deep queue flooded 40 at a time must have pushed requests down the
  // ladder; the exact split is timing-dependent but degradation happened.
  EXPECT_GT(by_tier[1] + by_tier[2], 0);
  const auto& lanes = s.lanes;
  ASSERT_EQ(lanes.count("STGCN/" + std::string(kDataset)), 1u);
  EXPECT_EQ(lanes.at("STGCN/" + std::string(kDataset)).degraded_cache +
                lanes.at("STGCN/" + std::string(kDataset)).degraded_baseline,
            by_tier[1] + by_tier[2]);
}

TEST(AdmissionOverload, DisabledLadderKeepsSeedShedBehaviour) {
  serve::ModelRegistry registry;
  TB_CHECK_OK(registry.Load(SpecFor("STGCN")));

  serve::ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.admission.enabled = false;  // explicit: the seed contract
  serve::Server server(&registry, options);
  // Not started: the queue fills and stays full, so submits past the
  // capacity must shed with ResourceExhausted and a queue_full reason.
  std::vector<std::future<serve::PredictResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    serve::PredictRequest request;
    request.model_name = "STGCN";
    request.dataset_name = kDataset;
    request.window = Window(0);
    futures.push_back(server.Submit(std::move(request)));
  }
  server.Start();
  int64_t ok = 0, shed = 0;
  for (auto& f : futures) {
    serve::PredictResponse response = f.get();
    if (response.status.ok()) {
      ++ok;
      EXPECT_EQ(response.tier, 0);
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  server.Stop();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 4);
  const serve::LatencySummary s = server.recorder().Summary();
  EXPECT_EQ(s.shed, 4);
  EXPECT_EQ(s.shed_queue_full, 4);
  EXPECT_EQ(s.tier1, 0);
  EXPECT_EQ(s.tier2, 0);
  EXPECT_EQ(s.lanes.at("STGCN/" + std::string(kDataset)).shed_queue_full, 4);
}

}  // namespace
}  // namespace trafficbench
