// Tests for the utility layer: Status/Result, TB_CHECK, Rng, Table.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace trafficbench {
namespace {

using internal_check::CheckError;

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad shape");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultType, HoldsValueOrStatus) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = Status::NotFound("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Check, PassesOnTrue) { TB_CHECK(1 + 1 == 2) << "never shown"; }

TEST(Check, ThrowsWithContext) {
  try {
    TB_CHECK(false) << "extra " << 42;
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("extra 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cc"), std::string::npos);
  }
}

TEST(Check, ComparisonMacros) {
  TB_CHECK_EQ(2, 2);
  TB_CHECK_LT(1, 2);
  TB_CHECK_GE(2, 2);
  EXPECT_THROW(TB_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(TB_CHECK_GT(1, 2), CheckError);
  EXPECT_THROW(TB_CHECK_NE(3, 3), CheckError);
}

TEST(Check, OkMacro) {
  TB_CHECK_OK(Status::Ok());
  EXPECT_THROW(TB_CHECK_OK(Status::Internal("boom")), CheckError);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
  EXPECT_THROW(rng.UniformInt(0), CheckError);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.1);
}

TEST(RngTest, PoissonMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) sum += rng.Poisson(4.0);
  EXPECT_NEAR(sum / 5000.0, 4.0, 0.2);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.05);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int64_t> values = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int64_t> original = values;
  rng.Shuffle(&values);
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(values, original);  // astronomically unlikely to be identity
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(7);
  Rng b = a.Fork();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(TableTest, AlignsAndRendersRows) {
  Table table({"a", "long_header"});
  table.AddRow({"x", "1"});
  table.AddRow({"yyyy", "2"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| a    | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| yyyy | 2           |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, RejectsWrongArity) {
  Table table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), CheckError);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table table({"name", "value"});
  table.AddRow({"with,comma", "with\"quote"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(-1.0, 0), "-1");
  EXPECT_EQ(Table::MeanStd(1.5, 0.25), "1.50 ± 0.25");
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMillis(), watch.ElapsedSeconds());
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace trafficbench
