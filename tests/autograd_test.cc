// Reverse-mode autograd tests: hand-computed gradients plus numerical
// gradient checking (property-style, parameterized over op kinds).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/gradcheck.h"
#include "src/tensor/tensor.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

Tensor RandInput(const Shape& shape, Rng* rng, float lo = -1.5f,
                 float hi = 1.5f) {
  return Tensor::Rand(shape, rng, lo, hi).set_requires_grad(true);
}

TEST(Autograd, ChainRuleThroughMul) {
  Tensor x = Tensor::Scalar(3.0f).set_requires_grad(true);
  Tensor y = x * x * x;  // d/dx x^3 = 3 x^2 = 27
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 27.0f, 1e-4);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::Scalar(2.0f).set_requires_grad(true);
  (x * 3.0f).Backward();
  (x * 3.0f).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Autograd, DiamondGraphSharedInput) {
  // y = x*x + x*x uses x twice along two paths.
  Tensor x = Tensor::Scalar(5.0f).set_requires_grad(true);
  Tensor a = x * x;
  Tensor y = a + a;
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 20.0f);
}

TEST(Autograd, BroadcastAddReducesGrad) {
  Tensor a = Tensor::Zeros(Shape({2, 3})).set_requires_grad(true);
  Tensor b = Tensor::Zeros(Shape({3})).set_requires_grad(true);
  (a + b).SumAll().Backward();
  EXPECT_EQ(a.grad(), std::vector<float>(6, 1.0f));
  EXPECT_EQ(b.grad(), std::vector<float>(3, 2.0f));  // summed over 2 rows
}

TEST(Autograd, NonScalarBackwardNeedsSeed) {
  Tensor a = Tensor::Zeros(Shape({2})).set_requires_grad(true);
  Tensor y = a * 2.0f;
  EXPECT_THROW(y.Backward(), internal_check::CheckError);
  y.Backward(Tensor::FromVector(Shape({2}), {1.0f, 10.0f}));
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 20.0f);
}

TEST(Autograd, MatMulHandGradient) {
  Tensor a = Tensor::FromVector(Shape({1, 2}), {1, 2}).set_requires_grad(true);
  Tensor b =
      Tensor::FromVector(Shape({2, 1}), {3, 4}).set_requires_grad(true);
  MatMul(a, b).SumAll().Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 2.0f);
}

// ---- Numerical gradient checks (property tests over op families) -------------

struct GradCase {
  std::string name;
  std::function<Tensor(const std::vector<Tensor>&)> fn;
  std::vector<Shape> input_shapes;
  // Inputs drawn from [lo, hi] to keep ops well-conditioned (e.g. log > 0).
  float lo = -1.5f;
  float hi = 1.5f;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, MatchesFiniteDifferences) {
  const GradCase& test_case = GetParam();
  Rng rng(1234);
  std::vector<Tensor> inputs;
  for (const Shape& shape : test_case.input_shapes) {
    inputs.push_back(RandInput(shape, &rng, test_case.lo, test_case.hi));
  }
  GradCheckResult result = CheckGradients(test_case.fn, inputs);
  EXPECT_TRUE(result.passed) << test_case.name << ": " << result.detail
                             << " (max abs err " << result.max_abs_error
                             << ")";
}

std::vector<GradCase> MakeGradCases() {
  std::vector<GradCase> cases;
  auto in = [](const std::vector<Tensor>& v, size_t i) { return v[i]; };

  cases.push_back({"add_broadcast",
                   [in](const std::vector<Tensor>& v) {
                     return (in(v, 0) + in(v, 1)).SumAll();
                   },
                   {Shape({2, 3}), Shape({3})}});
  cases.push_back({"sub", [in](const std::vector<Tensor>& v) {
                     return (in(v, 0) - in(v, 1)).SumAll();
                   },
                   {Shape({4}), Shape({4})}});
  cases.push_back({"mul_broadcast",
                   [in](const std::vector<Tensor>& v) {
                     return (in(v, 0) * in(v, 1)).SumAll();
                   },
                   {Shape({2, 1, 3}), Shape({2, 1})}});
  cases.push_back({"div",
                   [in](const std::vector<Tensor>& v) {
                     return (in(v, 0) / in(v, 1)).SumAll();
                   },
                   {Shape({3, 2}), Shape({3, 2})},
                   0.5f, 2.0f});
  cases.push_back({"weighted_square",
                   [in](const std::vector<Tensor>& v) {
                     Tensor d = in(v, 0) - in(v, 1);
                     return (d * d).MeanAll();
                   },
                   {Shape({2, 3}), Shape({2, 3})}});
  cases.push_back({"exp", [in](const std::vector<Tensor>& v) {
                     return in(v, 0).Exp().SumAll();
                   },
                   {Shape({2, 2})}});
  cases.push_back({"log",
                   [in](const std::vector<Tensor>& v) {
                     return in(v, 0).Log().SumAll();
                   },
                   {Shape({5})},
                   0.3f, 2.5f});
  cases.push_back({"sqrt",
                   [in](const std::vector<Tensor>& v) {
                     return in(v, 0).Sqrt().SumAll();
                   },
                   {Shape({5})},
                   0.3f, 2.5f});
  cases.push_back({"sigmoid", [in](const std::vector<Tensor>& v) {
                     return in(v, 0).Sigmoid().SumAll();
                   },
                   {Shape({3, 3})}});
  cases.push_back({"tanh", [in](const std::vector<Tensor>& v) {
                     return in(v, 0).Tanh().SumAll();
                   },
                   {Shape({3, 3})}});
  cases.push_back({"leaky_relu",
                   [in](const std::vector<Tensor>& v) {
                     // shift away from the kink at 0
                     return (in(v, 0) + 5.0f).LeakyRelu(0.2f).SumAll() +
                            (in(v, 0) - 5.0f).LeakyRelu(0.2f).SumAll();
                   },
                   {Shape({4})}});
  cases.push_back({"pow3", [in](const std::vector<Tensor>& v) {
                     return in(v, 0).Pow(3.0f).SumAll();
                   },
                   {Shape({4})}});
  cases.push_back({"softmax_weighted",
                   [in](const std::vector<Tensor>& v) {
                     // weight rows so the softmax Jacobian is exercised
                     Tensor w = Tensor::Arange(4).Reshape(Shape({1, 4}));
                     return (in(v, 0).Softmax(-1) * w).SumAll();
                   },
                   {Shape({3, 4})}});
  cases.push_back({"matmul",
                   [in](const std::vector<Tensor>& v) {
                     return MatMul(in(v, 0), in(v, 1)).SumAll();
                   },
                   {Shape({3, 4}), Shape({4, 2})}});
  cases.push_back({"matmul_batched_broadcast",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(8).Reshape(Shape({2, 2, 2}));
                     return (MatMul(in(v, 0), in(v, 1)) * w).SumAll();
                   },
                   {Shape({2, 2, 3}), Shape({3, 2})}});
  cases.push_back({"transpose_matmul",
                   [in](const std::vector<Tensor>& v) {
                     return MatMul(in(v, 0).Transpose(0, 1), in(v, 1)).SumAll();
                   },
                   {Shape({4, 3}), Shape({4, 2})}});
  cases.push_back({"permute_weighted",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(24).Reshape(Shape({4, 2, 3}));
                     return (in(v, 0).Permute({2, 0, 1}) * w).SumAll();
                   },
                   {Shape({2, 3, 4})}});
  cases.push_back({"slice_weighted",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(8).Reshape(Shape({2, 2, 2}));
                     return (in(v, 0).Slice(1, 1, 3) * w).SumAll();
                   },
                   {Shape({2, 4, 2})}});
  cases.push_back({"concat_weighted",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(12).Reshape(Shape({2, 6}));
                     return (Concat({in(v, 0), in(v, 1)}, 1) * w).SumAll();
                   },
                   {Shape({2, 2}), Shape({2, 4})}});
  cases.push_back({"pad_weighted",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(10).Reshape(Shape({2, 5}));
                     return (Pad(in(v, 0), 1, 2, 1) * w).SumAll();
                   },
                   {Shape({2, 2})}});
  cases.push_back({"index_select",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(6).Reshape(Shape({3, 2}));
                     return (IndexSelect(in(v, 0), 0, {1, 1, 0}) * w).SumAll();
                   },
                   {Shape({2, 2})}});
  cases.push_back({"sum_axis_weighted",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(3);
                     return (in(v, 0).Sum({0}) * w).SumAll();
                   },
                   {Shape({2, 3})}});
  cases.push_back({"mean_keepdim",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(2).Reshape(Shape({2, 1}));
                     return (in(v, 0).Mean({1}, true) * w).SumAll();
                   },
                   {Shape({2, 3})}});
  cases.push_back({"broadcast_to",
                   [in](const std::vector<Tensor>& v) {
                     Tensor w = Tensor::Arange(6).Reshape(Shape({3, 2}));
                     return (in(v, 0).BroadcastTo(Shape({3, 2})) * w).SumAll();
                   },
                   {Shape({1, 2})}});
  cases.push_back({"maximum",
                   [in](const std::vector<Tensor>& v) {
                     return Maximum(in(v, 0), in(v, 1)).SumAll();
                   },
                   {Shape({6}), Shape({6})}});
  cases.push_back({"conv2d_temporal",
                   [in](const std::vector<Tensor>& v) {
                     Tensor y = Conv2d(in(v, 0), in(v, 1), in(v, 2));
                     Tensor w = Tensor::Arange(y.numel()).Reshape(y.shape());
                     return (y * w).SumAll();
                   },
                   {Shape({2, 2, 3, 5}), Shape({3, 2, 1, 2}), Shape({3})}});
  cases.push_back({"conv2d_dilated_padded",
                   [in](const std::vector<Tensor>& v) {
                     Tensor y = Conv2d(in(v, 0), in(v, 1), Tensor(), 1, 1, 0,
                                       2, 1, 2);
                     Tensor w = Tensor::Arange(y.numel()).Reshape(y.shape());
                     return (y * w).SumAll();
                   },
                   {Shape({1, 2, 2, 6}), Shape({2, 2, 1, 3})}});
  cases.push_back({"mlp_composition",
                   [in](const std::vector<Tensor>& v) {
                     Tensor h = MatMul(in(v, 0), in(v, 1)).Tanh();
                     Tensor y = MatMul(h, in(v, 2)).Sigmoid();
                     return y.MeanAll();
                   },
                   {Shape({4, 3}), Shape({3, 5}), Shape({5, 2})}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(MakeGradCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace trafficbench
