// Tests for validation-based model selection in the trainer.

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"

namespace trafficbench {
namespace {

const data::TrafficDataset& ValDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetProfile profile;
    profile.name = "VALSEL";
    profile.num_nodes = 8;
    profile.num_days = 4;
    profile.seed = 1200;
    return new data::TrafficDataset(
        data::TrafficDataset::FromProfile(profile));
  }();
  return *dataset;
}

TEST(ValidationSelection, RecordsPerEpochValLosses) {
  auto model = models::CreateModel(
      "STG2Seq", models::MakeModelContext(ValDataset(), 4));
  eval::TrainConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  config.max_batches_per_epoch = 6;
  config.select_best_on_validation = true;
  config.max_val_batches = 3;
  eval::TrainResult result = TrainModel(model.get(), ValDataset(), config);
  ASSERT_EQ(result.val_losses.size(), 3u);
  ASSERT_GE(result.best_epoch, 0);
  ASSERT_LT(result.best_epoch, 3);
  // The kept epoch is the arg-min of the recorded validation losses.
  for (double loss : result.val_losses) {
    EXPECT_GE(loss, result.val_losses[result.best_epoch]);
  }
}

TEST(ValidationSelection, OffByDefault) {
  auto model = models::CreateModel(
      "STG2Seq", models::MakeModelContext(ValDataset(), 4));
  eval::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 2;
  eval::TrainResult result = TrainModel(model.get(), ValDataset(), config);
  EXPECT_TRUE(result.val_losses.empty());
  EXPECT_EQ(result.best_epoch, -1);
}

TEST(ValidationSelection, RestoredModelMatchesBestEpochLoss) {
  // Train with selection on; afterwards the model's validation loss must
  // equal the recorded best — i.e. the snapshot really was restored.
  auto model = models::CreateModel(
      "Graph-WaveNet", models::MakeModelContext(ValDataset(), 9));
  eval::TrainConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  config.max_batches_per_epoch = 6;
  config.learning_rate = 2e-2;  // deliberately unstable so epochs differ
  config.select_best_on_validation = true;
  config.max_val_batches = 3;
  eval::TrainResult result = TrainModel(model.get(), ValDataset(), config);

  // Recompute validation loss with the restored parameters.
  const data::DatasetSplits splits = ValDataset().Splits();
  model->SetTraining(false);
  NoGradGuard no_grad;
  double loss_sum = 0.0;
  int64_t batches = 0;
  for (int64_t base = splits.val_begin;
       base < splits.val_end && batches < config.max_val_batches;
       base += config.batch_size, ++batches) {
    const int64_t stop = std::min(splits.val_end, base + config.batch_size);
    data::Batch batch = ValDataset().MakeBatch(
        data::TrafficDataset::MakeIndices(base, stop));
    Tensor prediction = model->Forward(batch.x, Tensor());
    loss_sum += eval::MaskedMaeLoss(
                    ValDataset().scaler().Denormalize(prediction), batch.y)
                    .Item();
  }
  const double recomputed = loss_sum / batches;
  EXPECT_NEAR(recomputed, result.val_losses[result.best_epoch], 1e-5);
}

}  // namespace
}  // namespace trafficbench
