// Property sweeps over all seven dataset profiles (TEST_P): every mirror
// must produce a physically plausible, deterministic, windowable dataset
// with the paper's structural properties.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/models/traffic_model.h"

namespace trafficbench {
namespace {

class ProfileSweep : public ::testing::TestWithParam<data::DatasetProfile> {
 protected:
  // One generated dataset per profile, cached across the suite.
  static const data::TrafficDataset& Dataset(
      const data::DatasetProfile& profile) {
    static std::map<std::string, data::TrafficDataset>* cache =
        new std::map<std::string, data::TrafficDataset>();
    auto it = cache->find(profile.name);
    if (it == cache->end()) {
      data::DatasetProfile scaled = data::ScaleProfile(profile, 0.5);
      it = cache->emplace(profile.name,
                          data::TrafficDataset::FromProfile(scaled)).first;
    }
    return it->second;
  }
};

TEST_P(ProfileSweep, SeriesWithinPhysicalBounds) {
  const data::TrafficDataset& dataset = Dataset(GetParam());
  const float limit =
      GetParam().kind == data::FeatureKind::kSpeed ? 85.0f : 400.0f;
  for (float v : dataset.series().values) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, limit);
  }
}

TEST_P(ProfileSweep, MissingRateIsSmallButNonzero) {
  const data::TrafficDataset& dataset = Dataset(GetParam());
  int64_t missing = 0;
  for (float v : dataset.series().values) missing += v == 0.0f;
  const double rate =
      static_cast<double>(missing) / dataset.series().values.size();
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 0.05);
}

TEST_P(ProfileSweep, ScalerFitOnTrainOnlyIsFinite) {
  const data::TrafficDataset& dataset = Dataset(GetParam());
  EXPECT_TRUE(std::isfinite(dataset.scaler().mean()));
  EXPECT_GT(dataset.scaler().stddev(), 0.0f);
  // Normalized train data is roughly standard.
  const float z = dataset.scaler().Normalize(dataset.scaler().mean());
  EXPECT_NEAR(z, 0.0f, 1e-5);
}

TEST_P(ProfileSweep, WindowCountMatchesFormula) {
  const data::TrafficDataset& dataset = Dataset(GetParam());
  EXPECT_EQ(dataset.num_samples(),
            dataset.series().num_steps - dataset.input_len() -
                dataset.output_len() + 1);
  EXPECT_GT(dataset.num_samples(), 200);
}

TEST_P(ProfileSweep, DifficultMaskCoversAboutAQuarter) {
  const data::TrafficDataset& dataset = Dataset(GetParam());
  std::vector<uint8_t> mask = eval::DifficultMask(dataset.series(), {});
  EXPECT_NEAR(eval::MaskFraction(mask), 0.25, 0.05);
}

TEST_P(ProfileSweep, AdjacencyHasSpatialStructure) {
  const data::TrafficDataset& dataset = Dataset(GetParam());
  Tensor w = dataset.network().GaussianAdjacency();
  const int64_t n = w.dim(0);
  int64_t off_diagonal = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i != j && w.At({i, j}) > 0.0f) ++off_diagonal;
    }
  }
  // Every node should connect to at least one other on average.
  EXPECT_GT(off_diagonal, n);
}

TEST_P(ProfileSweep, ModelContextIsConsistent) {
  const data::TrafficDataset& dataset = Dataset(GetParam());
  models::ModelContext context = models::MakeModelContext(dataset, 5);
  EXPECT_EQ(context.num_nodes, dataset.num_nodes());
  EXPECT_EQ(context.input_len, 12);
  EXPECT_EQ(context.output_len, 12);
  EXPECT_EQ(context.adjacency.shape(),
            Shape({dataset.num_nodes(), dataset.num_nodes()}));
}

TEST_P(ProfileSweep, RegenerationIsDeterministic) {
  data::DatasetProfile scaled = data::ScaleProfile(GetParam(), 0.5);
  data::TrafficDataset a = data::TrafficDataset::FromProfile(scaled);
  EXPECT_EQ(a.series().values, Dataset(GetParam()).series().values);
}

std::vector<data::DatasetProfile> AllProfiles() {
  std::vector<data::DatasetProfile> profiles = data::SpeedProfiles();
  for (const auto& p : data::FlowProfiles()) profiles.push_back(p);
  return profiles;
}

INSTANTIATE_TEST_SUITE_P(
    AllSeven, ProfileSweep, ::testing::ValuesIn(AllProfiles()),
    [](const ::testing::TestParamInfo<data::DatasetProfile>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace trafficbench
