// Tests for the model-zoo shared helpers (layout transforms, GLU, time
// features) and the registry's ablation entries.

#include <gtest/gtest.h>

#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

TEST(ModelCommon, BcntRoundTrip) {
  Rng rng(1);
  Tensor x = Tensor::Randn(Shape({2, 12, 5, 3}), &rng);  // [B, T, N, C]
  Tensor bcnt = models::ToBcnt(x);
  EXPECT_EQ(bcnt.shape(), Shape({2, 3, 5, 12}));
  EXPECT_FLOAT_EQ(bcnt.At({1, 2, 4, 11}), x.At({1, 11, 4, 2}));
  Tensor back = models::FromBcnt(bcnt);
  EXPECT_EQ(back.ToVector(), x.ToVector());
}

TEST(ModelCommon, GraphMixAppliesSupportToNodes) {
  // Support shifting node 1's value into node 0.
  Tensor support = Tensor::FromVector(Shape({2, 2}), {0, 1, 0, 0});
  Tensor features = Tensor::FromVector(Shape({1, 2, 1}), {10.0f, 20.0f});
  Tensor mixed = models::GraphMix(support, features);
  EXPECT_FLOAT_EQ(mixed.At({0, 0, 0}), 20.0f);
  EXPECT_FLOAT_EQ(mixed.At({0, 1, 0}), 0.0f);
}

TEST(ModelCommon, GluChannelsGates) {
  // Channels [P | Q]: output = P * sigmoid(Q). Build Q with huge values so
  // sigmoid saturates to 1 and the output equals P.
  std::vector<float> data = {1, 2, 3, 4,      // P channel
                             100, 100, 100, 100};  // Q channel
  Tensor x = Tensor::FromVector(Shape({1, 2, 2, 2}), std::move(data));
  Tensor y = models::GluChannels(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_NEAR(y.At({0, 0, 0, 0}), 1.0f, 1e-4);
  EXPECT_NEAR(y.At({0, 0, 1, 1}), 4.0f, 1e-4);
}

TEST(ModelCommon, GluRejectsOddChannels) {
  Tensor x = Tensor::Zeros(Shape({1, 3, 2, 2}));
  EXPECT_THROW(models::GluChannels(x), internal_check::CheckError);
}

TEST(ModelCommon, LastTimeOfDayReadsFinalStep) {
  Tensor x = Tensor::Zeros(Shape({2, 4, 3, 2}));
  // Set the time channel of the last step for both batch elements.
  x.data()[((0 * 4 + 3) * 3 + 0) * 2 + 1] = 0.25f;
  x.data()[((1 * 4 + 3) * 3 + 0) * 2 + 1] = 0.75f;
  std::vector<float> tod = models::LastTimeOfDay(x);
  ASSERT_EQ(tod.size(), 2u);
  EXPECT_FLOAT_EQ(tod[0], 0.25f);
  EXPECT_FLOAT_EQ(tod[1], 0.75f);
}

TEST(ModelRegistryAblations, AllVariantsRegistered) {
  models::RegisterBuiltinModels();
  const auto& registry = models::ModelRegistry::Instance();
  for (const char* name :
       {"AB-spatial-none", "AB-spatial-cheb", "AB-spatial-diffusion",
        "AB-spatial-adaptive", "AB-temporal-gru", "AB-temporal-tcn",
        "AB-temporal-attention"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

TEST(ModelRegistryAblations, UnknownNameThrows) {
  models::RegisterBuiltinModels();
  models::ModelContext context;
  context.num_nodes = 4;
  context.adjacency = Tensor::Ones(Shape({4, 4}));
  EXPECT_THROW(
      models::ModelRegistry::Instance().Create("NoSuchModel", context),
      internal_check::CheckError);
}

TEST(ModelRegistryAblations, DuplicateRegistrationThrows) {
  models::RegisterBuiltinModels();
  EXPECT_THROW(models::ModelRegistry::Instance().Register(
                   "STGCN", [](const models::ModelContext&) {
                     return std::unique_ptr<models::TrafficModel>();
                   }),
               internal_check::CheckError);
}

}  // namespace
}  // namespace trafficbench
